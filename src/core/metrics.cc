#include "core/metrics.hh"

#include "sim/logging.hh"

namespace qr
{

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
outputDigest(const OutputMap &outputs)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mixIn = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (const auto &[tid, bytes] : outputs) {
        mixIn(static_cast<std::uint64_t>(tid));
        mixIn(bytes.size());
        mixIn(fnv1a(bytes.data(), bytes.size()));
    }
    return h;
}

double
RunMetrics::memLogBytesPerKiloInstr() const
{
    return ratio(static_cast<double>(logSizes.memoryBytes),
                 static_cast<double>(instrs) / 1000.0);
}

double
RunMetrics::inputLogBytesPerKiloInstr() const
{
    return ratio(static_cast<double>(logSizes.inputBytes),
                 static_cast<double>(instrs) / 1000.0);
}

double
RunMetrics::conflictChunkFraction() const
{
    std::uint64_t conflicts =
        reasonCounts[static_cast<int>(ChunkReason::ConflictRaw)] +
        reasonCounts[static_cast<int>(ChunkReason::ConflictWar)] +
        reasonCounts[static_cast<int>(ChunkReason::ConflictWaw)];
    return ratio(static_cast<double>(conflicts),
                 static_cast<double>(chunks));
}

std::string
RunMetrics::statsText() const
{
    std::string out;
    auto put = [&](const char *name, std::uint64_t v,
                   const char *desc) {
        out += csprintf("%-32s %14llu  # %s\n", name,
                        static_cast<unsigned long long>(v), desc);
    };
    auto putf = [&](const char *name, double v, const char *desc) {
        out += csprintf("%-32s %14.4f  # %s\n", name, v, desc);
    };
    put("sim.cycles", cycles, "simulated cycles");
    put("sim.instrs", instrs, "retired user instructions");
    putf("sim.ipc", ratio(static_cast<double>(instrs),
                          static_cast<double>(cycles)),
         "aggregate instructions per cycle");
    put("cpu.loads", loads, "retired loads");
    put("cpu.stores", stores, "retired stores");
    put("cpu.atomics", atomics, "locked read-modify-writes");
    put("kernel.syscalls", syscalls, "system calls");
    put("kernel.ctx_switches", contextSwitches, "context switches");
    put("kernel.migrations", migrations, "cross-core migrations");
    put("kernel.signals", signalsDelivered, "signals delivered");
    put("mem.l1_hits", l1Hits, "L1 hits");
    put("mem.l1_misses", l1Misses, "L1 misses");
    put("mem.bus_txns", busTxns, "coherence transactions");
    put("mem.invalidations", invalidations, "lines invalidated");
    put("rnr.chunks", chunks, "chunk records logged");
    for (int r = 0; r < numChunkReasons; ++r)
        put(csprintf("rnr.term.%s",
                     chunkReasonName(static_cast<ChunkReason>(r)))
                .c_str(),
            reasonCounts[r], "chunk terminations by cause");
    putf("rnr.chunk_size_mean", chunkSizes.mean(),
         "mean instructions per chunk");
    put("rnr.rsw_nonzero", rswNonZero, "chunks with RSW > 0");
    // The false-conflict classifier only runs when the recorder keeps
    // exact shadow sets; printing the counter otherwise would report a
    // misleading hard zero for a measurement that never happened.
    if (exactShadow) {
        put("rnr.false_conflicts", falseConflicts,
            "Bloom false-positive terminations (exact-shadow runs)");
    } else {
        out += csprintf("%-32s %14s  # %s\n", "rnr.false_conflicts",
                        "n/a",
                        "not measured (run without exact shadow sets)");
    }
    put("rnr.cbuf_bytes", cbufBytes, "raw bytes written to CBUFs");
    // Fault-injection accounting is only interesting when something
    // actually fired; fault-free runs keep the dump unchanged.
    if (droppedChunks || gapChunks || lostCbufSignals ||
        cbufDrainRetries || delayedCbufSignals) {
        put("fault.dropped_chunks", droppedChunks,
            "chunk records lost at the CBUF");
        put("fault.gap_chunks", gapChunks,
            "gap markers drained into the logs");
        put("fault.lost_signals", lostCbufSignals,
            "CBUF drain signals suppressed");
        put("fault.drain_retries", cbufDrainRetries,
            "failed RSM drain attempts");
        put("fault.delayed_signals", delayedCbufSignals,
            "drain signals delivered late");
    }
    // Device counters follow the fault convention: silent on runs
    // without an agent so pre-device stats dumps stay byte-identical.
    if (deviceEvents || deviceBusTxns) {
        put("device.events", deviceEvents,
            "bus-agent completions delivered");
        put("device.bus_txns", deviceBusTxns,
            "bus-agent coherence transactions");
    }
    put("capo.cbuf_drains", cbufDrains, "CBUF drain interrupts");
    put("capo.input_records", inputRecords, "input-log records");
    put("capo.overhead_cycles", recordingOverheadCycles,
        "software recording work");
    for (int c = 0; c < numOverheadCats; ++c)
        put(csprintf("capo.overhead.%s",
                     overheadCatName(static_cast<OverheadCat>(c)))
                .c_str(),
            overheadCycles[c], "overhead by category");
    put("log.memory_bytes", logSizes.memoryBytes,
        "packed chunk-log bytes");
    put("log.input_bytes", logSizes.inputBytes,
        "packed input-log bytes");
    putf("log.mem_bytes_per_kinstr", memLogBytesPerKiloInstr(),
         "memory-log density");
    return out;
}

std::string
RunMetrics::summary() const
{
    return csprintf(
        "cycles=%llu instrs=%llu chunks=%llu memlog=%lluB inlog=%lluB",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(instrs),
        static_cast<unsigned long long>(chunks),
        static_cast<unsigned long long>(logSizes.memoryBytes),
        static_cast<unsigned long long>(logSizes.inputBytes));
}

double
ReplaySpeed::modeledSpeedup() const
{
    if (modeledParallelCycles == 0)
        return 1.0;
    return static_cast<double>(modeledSequentialCycles) /
           static_cast<double>(modeledParallelCycles);
}

double
ReplaySpeed::measuredSpeedup() const
{
    if (seqExecMicros <= 0 || execMicros <= 0)
        return 0.0;
    return seqExecMicros / execMicros;
}

double
ReplaySpeed::availableParallelism() const
{
    if (criticalPathCycles == 0)
        return 1.0;
    return static_cast<double>(modeledSequentialCycles) /
           static_cast<double>(criticalPathCycles);
}

std::string
ReplaySpeed::summary() const
{
    std::string s = csprintf(
        "replay-speed: jobs=%d modeled-sequential=%llu "
        "modeled-parallel=%llu modeled-speedup=%.2fx "
        "critical-path=%llu available-parallelism=%.2fx "
        "graph-wall=%.0fus exec-wall=%.0fus",
        jobs,
        static_cast<unsigned long long>(modeledSequentialCycles),
        static_cast<unsigned long long>(modeledParallelCycles),
        modeledSpeedup(),
        static_cast<unsigned long long>(criticalPathCycles),
        availableParallelism(), graphMicros, execMicros);
    if (seqExecMicros > 0)
        s += csprintf(" seq-wall=%.0fus measured-speedup=%.2fx",
                      seqExecMicros, measuredSpeedup());
    return s;
}

} // namespace qr
