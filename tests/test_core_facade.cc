/**
 * @file
 * Facade-level tests: the Machine single-step driver, metrics and
 * stats rendering, digest helpers, and session-level invariants.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/session.hh"
#include "workloads/micro.hh"

namespace qr
{
namespace
{

TEST(MachineStep, StepLoopMatchesRun)
{
    Workload a = makeRacyCounter(2, 200, true);
    Workload b = makeRacyCounter(2, 200, true);

    Machine stepped(MachineConfig{}, RecorderConfig{}, a.program, true);
    while (stepped.step()) {
    }
    RunMetrics ms = stepped.metricsNow();

    Machine ran(MachineConfig{}, RecorderConfig{}, b.program, true);
    RunMetrics mr = ran.run();

    EXPECT_EQ(ms.cycles, mr.cycles);
    EXPECT_EQ(ms.instrs, mr.instrs);
    EXPECT_EQ(ms.digests, mr.digests);
    EXPECT_EQ(stepped.sphereLogs().serialize(),
              ran.sphereLogs().serialize());
}

TEST(MachineStep, StepAfterExitIsIdempotent)
{
    Workload w = makeRacyCounter(1, 50, false);
    Machine m(MachineConfig{}, RecorderConfig{}, w.program, true);
    while (m.step()) {
    }
    Tick done = m.cycles();
    EXPECT_FALSE(m.step());
    EXPECT_FALSE(m.step());
    EXPECT_EQ(m.cycles(), done);
    // Finalize ran exactly once: logs are complete and sorted.
    EXPECT_GT(m.sphereLogs().totalChunks(), 0u);
}

TEST(Machine, MemoryViewSeesGuestState)
{
    Workload w = makeRacyCounter(1, 10, false);
    Machine m(MachineConfig{}, RecorderConfig{}, w.program, false);
    m.run();
    // The counter lives at the first line-aligned data word; its final
    // value (10) must be visible through the debug view.
    bool found = false;
    for (Addr a = 0x1000; a < 0x3000; a += 4)
        found |= m.memory().read(a) == 10;
    EXPECT_TRUE(found);
}

TEST(Metrics, StatsTextContainsEverySection)
{
    Workload w = makeProdCons(4, 40);
    RecordResult rec = recordProgram(w.program);
    std::string text = rec.metrics.statsText();
    for (const char *key :
         {"sim.cycles", "sim.ipc", "cpu.loads", "kernel.syscalls",
          "mem.l1_misses", "rnr.chunks", "rnr.term.syscall",
          "capo.overhead.syscall-intercept", "log.memory_bytes"})
        EXPECT_NE(text.find(key), std::string::npos) << key;
}

TEST(Metrics, DerivedRatesAreConsistent)
{
    Workload w = makeRacyCounter(4, 500, false);
    RecordResult rec = recordProgram(w.program);
    const RunMetrics &m = rec.metrics;
    EXPECT_NEAR(m.memLogBytesPerKiloInstr(),
                static_cast<double>(m.logSizes.memoryBytes) * 1000.0 /
                    static_cast<double>(m.instrs),
                1e-9);
    EXPECT_GE(m.conflictChunkFraction(), 0.0);
    EXPECT_LE(m.conflictChunkFraction(), 1.0);
}

TEST(Digests, Fnv1aAndOutputDigestBasics)
{
    const std::uint8_t a[] = {1, 2, 3};
    const std::uint8_t b[] = {1, 2, 4};
    EXPECT_NE(fnv1a(a, 3), fnv1a(b, 3));
    EXPECT_EQ(fnv1a(a, 0), fnv1a(b, 0));

    OutputMap m1, m2;
    m1[1] = {1, 2, 3};
    m2[1] = {1, 2, 3};
    EXPECT_EQ(outputDigest(m1), outputDigest(m2));
    m2[2] = {9};
    EXPECT_NE(outputDigest(m1), outputDigest(m2));
    // Same bytes under a different tid must differ (per-thread order).
    OutputMap m3;
    m3[2] = {1, 2, 3};
    EXPECT_NE(outputDigest(m1), outputDigest(m3));
}

TEST(Session, SeedChangesInterleavingNotCorrectness)
{
    // Different kernel input seeds give different recorded executions
    // of a racy program, yet each replays exactly.
    std::set<std::uint64_t> memDigests;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        Workload w = makeNondetMix(2, 60);
        MachineConfig mcfg;
        mcfg.kernel.inputSeed = seed;
        RoundTrip rt = recordAndReplay(w.program, mcfg);
        ASSERT_TRUE(rt.deterministic()) << "seed " << seed;
        memDigests.insert(rt.record.metrics.digests.memory);
    }
    EXPECT_GT(memDigests.size(), 1u);
}

TEST(SessionDeath, RunTwicePanics)
{
    Workload w = makeRacyCounter(1, 10, false);
    Machine m(MachineConfig{}, RecorderConfig{}, w.program, false);
    m.run();
    EXPECT_DEATH(m.run(), "run called twice");
}

} // namespace
} // namespace qr
