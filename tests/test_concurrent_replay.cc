/**
 * @file
 * Schedule-perturbation stress tests of the concurrent parallel
 * replayer. QR_REPLAY_STRESS=<seed> makes every worker inject seeded
 * random yields and microsecond sleeps at the chunk claim and commit
 * points, driving the pool through interleavings the natural timing
 * would never produce. Whatever the interleaving, the architectural
 * outcome must be bit-identical to the sequential oracle: digests,
 * injected-input counts, replayed counts, and -- for gap-poisoned
 * spheres -- the full DegradedReplay summary. 50 perturbed runs sweep
 * jobs 2/4/8, on clean recordings, on fault-injected gap-heavy
 * recordings, and on salvaged corpus spheres.
 *
 * The commit-fence instrumentation (per-line version checks) must also
 * be live in every run: versionSlots/fenceChecks > 0 on conflicting
 * workloads proves the protocol is being asserted, not just assumed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "capo/log_store.hh"
#include "core/session.hh"
#include "workloads/micro.hh"

namespace
{

using namespace qr;

/** Scoped QR_REPLAY_STRESS: armed for one replay, then cleared so
 *  later tests (and other suites in this binary) run unperturbed. */
class StressEnv
{
  public:
    explicit StressEnv(std::uint64_t seed)
    {
        setenv("QR_REPLAY_STRESS", std::to_string(seed).c_str(), 1);
    }
    ~StressEnv() { unsetenv("QR_REPLAY_STRESS"); }
};

RecorderConfig
gapRecorder(std::uint64_t seed)
{
    RecorderConfig rcfg;
    rcfg.faults.spec = "cbuf-drop@0.9";
    rcfg.faults.seed = seed;
    rcfg.cbuf.entries = 64;
    return rcfg;
}

/** One perturbed parallel run vs. the oracle, all observables. */
void
expectStressedIdentical(const Program &prog, const SphereLogs &logs,
                        const ReplayResult &seq, int jobs,
                        std::uint64_t stressSeed, ReplayMode mode)
{
    StressEnv env(stressSeed);
    ParallelReplayResult par =
        replaySphereParallel(prog, logs, jobs, mode);
    ASSERT_EQ(par.replay.ok, seq.ok)
        << "jobs=" << jobs << " stress=" << stressSeed << ": "
        << par.replay.divergence;
    EXPECT_EQ(par.replay.digests, seq.digests)
        << "jobs=" << jobs << " stress=" << stressSeed;
    EXPECT_EQ(par.replay.injectedRecords, seq.injectedRecords)
        << "jobs=" << jobs << " stress=" << stressSeed;
    EXPECT_EQ(par.replay.replayedChunks, seq.replayedChunks)
        << "jobs=" << jobs << " stress=" << stressSeed;
    EXPECT_EQ(par.replay.replayedInstrs, seq.replayedInstrs)
        << "jobs=" << jobs << " stress=" << stressSeed;
    EXPECT_EQ(par.replay.modeledCycles, seq.modeledCycles)
        << "jobs=" << jobs << " stress=" << stressSeed;
    if (mode == ReplayMode::Degraded) {
        EXPECT_EQ(par.replay.degradedMode, seq.degradedMode);
        EXPECT_EQ(par.replay.degraded.summary(),
                  seq.degraded.summary())
            << "jobs=" << jobs << " stress=" << stressSeed;
    }
}

TEST(ConcurrentReplay, FiftyPerturbedRunsMatchTheOracle)
{
    Workload w = makeRacyCounter(4, 300, false);
    RecordResult rec = recordProgram(w.program);
    ReplayResult seq = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(seq.ok) << seq.divergence;

    const int jobSweep[] = {2, 4, 8};
    for (std::uint64_t i = 0; i < 50; ++i)
        expectStressedIdentical(w.program, rec.logs, seq,
                                jobSweep[i % 3], i + 1,
                                ReplayMode::Strict);
}

TEST(ConcurrentReplay, FiftyPerturbedDegradedRunsKeepTheSummary)
{
    // A gap-heavy recording: tiny CBUF, most drain signals lost. The
    // degraded summary (replayed/skipped/gaps/incomplete and the
    // earliest divergence) is derived purely from per-thread
    // program-order facts, so no interleaving may change a digit.
    Workload w = makeRacyCounter(4, 1000, false);
    RecordResult rec = recordProgram(w.program, {}, gapRecorder(7));
    ASSERT_GT(rec.metrics.gapChunks, 0u)
        << "fault plan produced no gaps; stress test would be vacuous";

    ReplayResult seq =
        replaySphere(w.program, rec.logs, ReplayMode::Degraded);
    ASSERT_TRUE(seq.ok) << seq.divergence;
    ASSERT_TRUE(seq.degradedMode);

    const int jobSweep[] = {2, 4, 8};
    for (std::uint64_t i = 0; i < 50; ++i)
        expectStressedIdentical(w.program, rec.logs, seq,
                                jobSweep[i % 3], 1000 + i,
                                ReplayMode::Degraded);
}

TEST(ConcurrentReplay, CommitFenceProtocolIsExercised)
{
    // Racy counters conflict on the shared word constantly, so the
    // fence plan must cover lines and the claim-time checks must run.
    Workload w = makeRacyCounter(4, 300, false);
    RecordResult rec = recordProgram(w.program);
    ParallelReplayResult par =
        replaySphereParallel(w.program, rec.logs, 4);
    ASSERT_TRUE(par.replay.ok) << par.replay.divergence;
    EXPECT_GT(par.versionSlots, 0u);
    EXPECT_GT(par.fenceChecks, 0u);
}

TEST(ConcurrentReplay, StressKnobDoesNotChangeFenceCoverage)
{
    Workload w = makeFalseSharing(4, 200);
    RecordResult rec = recordProgram(w.program);
    ParallelReplayResult calm =
        replaySphereParallel(w.program, rec.logs, 4);
    ASSERT_TRUE(calm.replay.ok);
    StressEnv env(99);
    ParallelReplayResult stressed =
        replaySphereParallel(w.program, rec.logs, 4);
    ASSERT_TRUE(stressed.replay.ok);
    // The fence plan is schedule-derived, not timing-derived.
    EXPECT_EQ(stressed.versionSlots, calm.versionSlots);
    EXPECT_EQ(stressed.fenceChecks, calm.fenceChecks);
    EXPECT_EQ(stressed.replay.digests, calm.replay.digests);
}

TEST(ConcurrentReplay, MeasuredWallClockIsReported)
{
    Workload w = makeRacyCounter(4, 300, false);
    RecordResult rec = recordProgram(w.program);
    ReplayComparison cmp = compareReplay(w.program, rec.logs, 4);
    ASSERT_TRUE(cmp.identical) << cmp.mismatch;
    EXPECT_GT(cmp.sequential.execMicros, 0.0);
    EXPECT_GT(cmp.parallel.speed.execMicros, 0.0);
    EXPECT_GT(cmp.parallel.speed.seqExecMicros, 0.0);
    // Measured speedup is a wall-clock ratio: positive, finite, and
    // honest -- no assertion that it exceeds 1, which only real spare
    // cores can deliver. The modeled number is a separate claim.
    EXPECT_GT(cmp.parallel.speed.measuredSpeedup(), 0.0);
    EXPECT_GT(cmp.parallel.speed.modeledSpeedup(), 0.0);
}

#ifdef QR_CORPUS_DIR

std::string
corpusPath(const char *name)
{
    return std::string(QR_CORPUS_DIR) + "/" + name;
}

TEST(ConcurrentReplay, SalvagedCorpusSpheresStressDegraded)
{
    // torn_tail.qrs: the checked-in crash-truncated sphere (recorded
    // from makeRacyCounter(4, 1000, false)). Salvage gives a prefix
    // whose degraded replay poisons the truncated threads; every
    // perturbed parallel run must report the oracle's exact summary.
    SphereRecoverResult salvage =
        recoverSphere(corpusPath("torn_tail.qrs"));
    ASSERT_TRUE(salvage) << salvage.error;
    Workload w = makeRacyCounter(4, 1000, false);

    ReplayResult seq =
        replaySphere(w.program, salvage.logs, ReplayMode::Degraded);
    ASSERT_TRUE(seq.ok) << seq.divergence;
    ASSERT_TRUE(seq.degradedMode);

    for (int jobs : {2, 4, 8})
        for (std::uint64_t s = 1; s <= 5; ++s)
            expectStressedIdentical(w.program, salvage.logs, seq,
                                    jobs, 5000 + s,
                                    ReplayMode::Degraded);
}

#endif // QR_CORPUS_DIR

} // namespace
