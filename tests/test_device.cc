/**
 * @file
 * BusAgent device tests: payload regeneration, v3 sphere
 * serialization (including pre-device back-compat and future-version
 * rejection), record/replay bit-identity of the device workloads
 * across sequential, parallel, and degraded engines, device replay
 * faults, and the analyzer's device/core race ground truth on the
 * twin workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/race_analyzer.hh"
#include "analyze/verify.hh"
#include "bus/device_stream.hh"
#include "capo/log_store.hh"
#include "capo/payload_view.hh"
#include "capo/sphere.hh"
#include "core/session.hh"
#include "fault/fault_plan.hh"
#include "replay/log_reader.hh"
#include "sim/logging.hh"
#include "workloads/device.hh"
#include "workloads/micro.hh"

namespace qr
{
namespace
{

struct DevRecorded
{
    Workload w;
    RecordResult rec;
};

/** Record a device workload with its declared agent armed, the way
 *  `qrec record --device <kind>` does. */
DevRecorded
recordDevice(Workload w, bool exact = false)
{
    EXPECT_TRUE(w.device.present()) << w.name;
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = exact;
    BusAgentConfig a;
    a.agentId = 0;
    a.kind = w.device.kind;
    a.ringBase = w.device.ringBase;
    a.slotWords = w.device.slotWords;
    a.slots = w.device.slots;
    a.doorbell = w.device.doorbell;
    a.count = w.device.count;
    a.rate = w.device.rate;
    rcfg.devices.push_back(a);
    RecordResult rec = recordProgram(w.program, {}, rcfg);
    return {std::move(w), std::move(rec)};
}

// --- payload regeneration ------------------------------------------------

TEST(DevicePayload, PureFunctionOfSeedSeqWord)
{
    EXPECT_EQ(devicePayloadWord(7, 3, 0), devicePayloadWord(7, 3, 0));
    EXPECT_NE(devicePayloadWord(7, 3, 0), devicePayloadWord(7, 4, 0));
    EXPECT_NE(devicePayloadWord(7, 3, 0), devicePayloadWord(8, 3, 0));
    EXPECT_NE(devicePayloadWord(7, 3, 0), devicePayloadWord(7, 3, 1));
    EXPECT_EQ(deviceEventDigest(1, 0, 8), deviceEventDigest(1, 0, 8));
    EXPECT_NE(deviceEventDigest(1, 0, 8), deviceEventDigest(1, 1, 8));
    EXPECT_NE(deviceEventDigest(1, 0, 8), deviceEventDigest(1, 0, 7));
}

// --- serialization -------------------------------------------------------

TEST(DeviceSphere, RecordsStreamAndSerializesAsV3)
{
    DevRecorded r = recordDevice(makePacketIngest(2, 1));
    ASSERT_EQ(r.rec.logs.devices.size(), 1u);
    const DeviceStream &ds = r.rec.logs.devices[0];
    EXPECT_EQ(ds.kind, DeviceKind::Nic);
    ASSERT_EQ(ds.events.size(), r.w.device.count);
    for (std::size_t i = 0; i < ds.events.size(); ++i) {
        const DeviceEvent &ev = ds.events[i];
        EXPECT_EQ(ev.seq, i);
        EXPECT_EQ(ev.words, r.w.device.slotWords);
        EXPECT_EQ(ev.digest,
                  deviceEventDigest(ds.seed, ev.seq, ev.words));
        if (i) {
            EXPECT_GT(ev.ts, ds.events[i - 1].ts);
        }
    }

    std::vector<std::uint8_t> bytes = r.rec.logs.serialize();
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_EQ(bytes[3], '3');
    SphereLogs round = SphereLogs::deserialize(bytes);
    ASSERT_EQ(round.devices.size(), 1u);
    EXPECT_EQ(round.devices[0], ds);
    EXPECT_EQ(round.serialize(), bytes);
}

TEST(DeviceSphere, DevicelessSpheresKeepThePreDeviceFormat)
{
    Workload w = makeRacyCounter(2, 100, false);
    RecordResult rec = recordProgram(w.program);
    EXPECT_TRUE(rec.logs.devices.empty());
    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_NE(bytes[3], '3'); // no device section, no v3 header
    SphereLogs round = SphereLogs::deserialize(bytes);
    EXPECT_TRUE(round.devices.empty());
    EXPECT_EQ(round.serialize(), bytes);
}

TEST(DeviceSphere, FutureVersionFailsRecoverably)
{
    DevRecorded r = recordDevice(makePacketIngest(2, 1));
    std::vector<std::uint8_t> bytes = r.rec.logs.serialize();
    bytes[3] = '4';
    try {
        SphereLogs::deserialize(bytes);
        FAIL() << "a future-version sphere must not parse";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("future"),
                  std::string::npos)
            << e.what();
    }
}

TEST(DeviceSphere, BuildScheduleMergesDeviceRecords)
{
    DevRecorded r = recordDevice(makeStorageCompletion(2, 1));
    const SphereLogs &logs = r.rec.logs;
    std::vector<ChunkRecord> sched = buildSchedule(logs);
    std::uint64_t devRecords = 0;
    for (std::size_t i = 0; i < sched.size(); ++i) {
        if (i) {
            EXPECT_GE(std::pair(sched[i].ts, sched[i].tid),
                      std::pair(sched[i - 1].ts, sched[i - 1].tid));
        }
        if (sched[i].reason == ChunkReason::Device) {
            devRecords++;
            EXPECT_EQ(sched[i].tid, deviceTidFor(0));
            EXPECT_TRUE(isDeviceTid(sched[i].tid));
        } else {
            EXPECT_FALSE(isDeviceTid(sched[i].tid));
        }
    }
    EXPECT_EQ(devRecords, logs.devices[0].events.size());
    EXPECT_EQ(sched.size(),
              logs.totalChunks() + logs.devices[0].events.size());
}

// --- replay bit-identity -------------------------------------------------

TEST(DeviceReplay, PacketIngestBitIdenticalAcrossEngines)
{
    DevRecorded r = recordDevice(makePacketIngest(3, 2));
    std::uint64_t events = r.rec.logs.devices[0].events.size();

    ReplayResult seq = replaySphere(r.w.program, r.rec.logs);
    ASSERT_TRUE(seq.ok) << seq.divergence;
    EXPECT_TRUE(
        verifyDigests(r.rec.metrics.digests, seq.digests).ok);
    EXPECT_EQ(seq.injectedDeviceEvents, events);

    for (int jobs : {1, 2, 4, 8}) {
        ReplayComparison cmp =
            compareReplay(r.w.program, r.rec.logs, jobs);
        EXPECT_TRUE(cmp.identical) << "jobs=" << jobs << ": "
                                   << cmp.mismatch;
    }
}

TEST(DeviceReplay, StorageCompletionBitIdenticalAcrossEngines)
{
    DevRecorded r = recordDevice(makeStorageCompletion(2, 1));
    ReplayResult seq = replaySphere(r.w.program, r.rec.logs);
    ASSERT_TRUE(seq.ok) << seq.divergence;
    EXPECT_TRUE(
        verifyDigests(r.rec.metrics.digests, seq.digests).ok);
    for (int jobs : {2, 8}) {
        ReplayComparison cmp =
            compareReplay(r.w.program, r.rec.logs, jobs);
        EXPECT_TRUE(cmp.identical) << "jobs=" << jobs << ": "
                                   << cmp.mismatch;
    }
}

TEST(DeviceReplay, DegradedModeInjectsAndMatchesParallel)
{
    DevRecorded r = recordDevice(makePacketIngest(2, 1));
    std::uint64_t events = r.rec.logs.devices[0].events.size();
    ReplayResult seq =
        replaySphere(r.w.program, r.rec.logs, ReplayMode::Degraded);
    ASSERT_TRUE(seq.degradedMode);
    EXPECT_EQ(seq.degraded.deviceInjected, events);
    EXPECT_EQ(seq.degraded.deviceDivergences, 0u);
    EXPECT_EQ(seq.degraded.divergences, 0u);
    ReplayComparison cmp = compareReplay(r.w.program, r.rec.logs, 4,
                                         ReplayMode::Degraded);
    EXPECT_TRUE(cmp.identical) << cmp.mismatch;
}

// --- replay fault injection ----------------------------------------------

TEST(DeviceFaults, DroppedCompletionsDivergeStrictReplay)
{
    DevRecorded r = recordDevice(makePacketIngest(2, 1));
    SphereLogs faulted = r.rec.logs;
    FaultPlan plan = FaultPlan::parse("dev-drop@1.0", 11);
    DeviceFaultSummary sum =
        applyDeviceReplayFaults(faulted.devices, plan);
    EXPECT_EQ(sum.dropped, r.rec.logs.devices[0].events.size());
    EXPECT_TRUE(faulted.devices[0].events.empty());

    // Without the completions the consumer's doorbell polls replay
    // against a doorbell that is never written: a divergence, never a
    // silently wrong replay.
    ReplayResult rep = replaySphere(r.w.program, faulted);
    EXPECT_FALSE(rep.ok);
    EXPECT_FALSE(rep.divergence.empty());

    // Degraded replay contains the damage and still terminates.
    ReplayResult deg =
        replaySphere(r.w.program, faulted, ReplayMode::Degraded);
    ASSERT_TRUE(deg.degradedMode);
    EXPECT_GT(deg.degraded.divergences + deg.degraded.threadsIncomplete,
              0u);
}

TEST(DeviceFaults, PartialDropPreservesSurvivorSequenceNumbers)
{
    DevRecorded r = recordDevice(makePacketIngest(2, 2));
    SphereLogs faulted = r.rec.logs;
    FaultPlan plan = FaultPlan::parse("dev-drop@0.5", 3);
    DeviceFaultSummary sum =
        applyDeviceReplayFaults(faulted.devices, plan);
    const DeviceStream &ds = faulted.devices[0];
    ASSERT_EQ(ds.events.size() + sum.dropped,
              r.rec.logs.devices[0].events.size());
    // Survivors keep their recorded seq (the payload-generation
    // input), so their digests still verify after the drop.
    for (std::size_t i = 0; i < ds.events.size(); ++i) {
        if (i) {
            EXPECT_GT(ds.events[i].seq, ds.events[i - 1].seq);
        }
        EXPECT_EQ(ds.events[i].digest,
                  deviceEventDigest(ds.seed, ds.events[i].seq,
                                    ds.events[i].words));
    }
}

TEST(DeviceFaults, TornPayloadDetectedAtTheAnchor)
{
    DevRecorded r = recordDevice(makeStorageCompletion(2, 1));
    SphereLogs faulted = r.rec.logs;
    FaultPlan plan = FaultPlan::parse("dev-torn@1.0", 5);
    DeviceFaultSummary sum =
        applyDeviceReplayFaults(faulted.devices, plan);
    EXPECT_GT(sum.torn, 0u);
    ReplayResult rep = replaySphere(r.w.program, faulted);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.divergence.find("agent"), std::string::npos)
        << rep.divergence;
}

TEST(DeviceFaults, LateAnchorsStayStrictlyMonotonic)
{
    DevRecorded r = recordDevice(makePacketIngest(2, 1));
    SphereLogs faulted = r.rec.logs;
    FaultPlan plan = FaultPlan::parse("dev-late@1.0", 9);
    DeviceFaultSummary sum =
        applyDeviceReplayFaults(faulted.devices, plan);
    EXPECT_GT(sum.late, 0u);
    EXPECT_TRUE(sum.any());
    const std::vector<DeviceEvent> &evs = faulted.devices[0].events;
    for (std::size_t i = 1; i < evs.size(); ++i)
        EXPECT_GT(evs[i].ts, evs[i - 1].ts);
    // The schedule merge depends on that monotonicity.
    EXPECT_NO_THROW(buildSchedule(faulted));
}

// --- analyzer ground truth ----------------------------------------------

TEST(DeviceAnalyze, RacyTwinFlagsExactlyThePlantedLine)
{
    Addr planted = 0;
    DevRecorded r =
        recordDevice(makeDeviceRaceDemo(2, true, &planted), true);
    RaceReport rep = analyzeSphere(r.rec.logs, 0);
    ASSERT_TRUE(rep.exact);
    EXPECT_EQ(rep.deviceEvents, r.w.device.count);
    ASSERT_FALSE(rep.deviceRaces.empty());
    for (const DeviceRace &dr : rep.deviceRaces) {
        EXPECT_EQ(dr.line, planted) << dr.str();
        EXPECT_TRUE(dr.preEvent) << dr.str();
    }
    // The twins' thread-side work is race-free by construction.
    EXPECT_TRUE(rep.races.empty());
}

TEST(DeviceAnalyze, CleanTwinReportsZeroDeviceRaces)
{
    DevRecorded r = recordDevice(makeDeviceRaceDemo(2, false), true);
    RaceReport rep = analyzeSphere(r.rec.logs, 0);
    ASSERT_TRUE(rep.exact);
    EXPECT_EQ(rep.deviceEvents, r.w.device.count);
    EXPECT_GT(rep.deviceEdges, 0u);
    EXPECT_TRUE(rep.deviceRaces.empty());
    EXPECT_TRUE(rep.races.empty());
}

TEST(DeviceAnalyze, StreamingMatchesEagerOnBothTwins)
{
    for (bool racy : {false, true}) {
        DevRecorded r =
            recordDevice(makeDeviceRaceDemo(2, racy), true);
        RaceReport eager = analyzeSphere(r.rec.logs, 0);
        std::vector<std::uint8_t> bytes = r.rec.logs.serialize();
        SphereCursor cur{PayloadView(bytes)};
        RaceReport stream = analyzeSphereStreaming(cur);
        EXPECT_EQ(stream.deviceEvents, eager.deviceEvents);
        EXPECT_EQ(stream.deviceEdges, eager.deviceEdges);
        EXPECT_EQ(stream.deviceRaces, eager.deviceRaces);
        EXPECT_EQ(stream.str(), eager.str()) << "racy=" << racy;
    }
}

TEST(DeviceAnalyze, BloomOnlySpheresCountButDoNotClassify)
{
    DevRecorded r = recordDevice(makeDeviceRaceDemo(2, true), false);
    RaceReport rep = analyzeSphere(r.rec.logs, 0);
    EXPECT_FALSE(rep.exact);
    EXPECT_EQ(rep.deviceEvents, r.w.device.count);
    EXPECT_TRUE(rep.deviceRaces.empty());
    EXPECT_NE(rep.str().find("n/a"), std::string::npos);
}

// --- pre-device back-compat against the golden corpus --------------------

#ifdef QR_CORPUS_DIR

std::string
corpusPath(const char *name)
{
    return std::string(QR_CORPUS_DIR) + "/" + name;
}

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<std::uint8_t> bytes;
    if (f) {
        std::uint8_t buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.insert(bytes.end(), buf, buf + n);
        std::fclose(f);
    }
    return bytes;
}

/** A sphere recorded before the device section existed must parse
 *  with no device streams and re-serialize in its original format. */
TEST(DeviceCompat, GoldenSphereParsesWithNoDeviceStream)
{
    SphereLoadResult loaded = loadSphere(corpusPath("intact.qrs"));
    ASSERT_TRUE(loaded) << loaded.error;
    EXPECT_TRUE(loaded.logs.devices.empty());
    std::vector<std::uint8_t> bytes = loaded.logs.serialize();
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_NE(bytes[3], '3');
    EXPECT_EQ(SphereLogs::deserialize(bytes).serialize(), bytes);
}

/** The device-aware replayer must replay a pre-device sphere exactly
 *  as before: no injection, no device accounting. */
TEST(DeviceCompat, GoldenSphereReplaysWithZeroDeviceEvents)
{
    SphereLoadResult loaded = loadSphere(corpusPath("intact.qrs"));
    ASSERT_TRUE(loaded) << loaded.error;
    Workload w = makeRacyCounter(4, 1000, false);
    ReplayResult rep = replaySphere(w.program, loaded.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_EQ(rep.injectedDeviceEvents, 0u);
    ReplayComparison cmp = compareReplay(w.program, loaded.logs, 4);
    EXPECT_TRUE(cmp.identical) << cmp.mismatch;
    EXPECT_EQ(cmp.parallel.replay.injectedDeviceEvents, 0u);
}

/** The new QRV017/QRV018 device rules must stay silent on artifacts
 *  that predate device streams. */
TEST(DeviceCompat, GoldenSphereLintsCleanOfDeviceFindings)
{
    LintReport rep =
        lintSphereBytes(readAll(corpusPath("intact.qrs")), "intact");
    EXPECT_TRUE(rep.clean()) << rep.str();
    for (const LintFinding &f : rep.findings)
        EXPECT_TRUE(f.code != "QRV017" && f.code != "QRV018")
            << f.message;
}

/** The analyzer's device section must not appear for pre-device
 *  spheres: counts zero and no "device" lines in the report. */
TEST(DeviceCompat, GoldenSphereAnalyzesWithoutDeviceSection)
{
    SphereLoadResult loaded = loadSphere(corpusPath("intact.qrs"));
    ASSERT_TRUE(loaded) << loaded.error;
    RaceReport rep = analyzeSphere(loaded.logs, 0);
    EXPECT_EQ(rep.deviceEvents, 0u);
    EXPECT_EQ(rep.deviceEdges, 0u);
    EXPECT_TRUE(rep.deviceRaces.empty());
    EXPECT_EQ(rep.str().find("device"), std::string::npos);
    BenchDoc doc = rep.toBenchDoc("compat");
    for (const BenchResult &row : doc.results)
        EXPECT_EQ(row.metric.find("device"), std::string::npos)
            << row.metric;
}

#endif // QR_CORPUS_DIR

} // namespace
} // namespace qr
