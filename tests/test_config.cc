/**
 * @file
 * Configuration-validation and trace-framework tests: user errors must
 * fail fast with a clear message, and the QR_TRACE machinery must
 * gate output correctly.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/session.hh"
#include "sim/trace.hh"
#include "workloads/micro.hh"

namespace qr
{
namespace
{

TEST(ConfigDeath, RejectsZeroCores)
{
    MachineConfig mcfg;
    mcfg.numCores = 0;
    EXPECT_EXIT(validate(mcfg, RecorderConfig{}),
                ::testing::ExitedWithCode(1), "numCores");
}

TEST(ConfigDeath, RejectsTinyMemory)
{
    MachineConfig mcfg;
    mcfg.memBytes = 4096;
    EXPECT_EXIT(validate(mcfg, RecorderConfig{}),
                ::testing::ExitedWithCode(1), "memory");
}

TEST(ConfigDeath, RejectsFinerThanLineGranularity)
{
    MachineConfig mcfg;
    RecorderConfig rcfg;
    rcfg.rnr.lineBytes = 16; // finer than the 64 B coherence line
    EXPECT_EXIT(validate(mcfg, rcfg), ::testing::ExitedWithCode(1),
                "granularity");
}

TEST(ConfigDeath, RejectsNonMultipleGranularity)
{
    MachineConfig mcfg;
    RecorderConfig rcfg;
    rcfg.rnr.lineBytes = 96;
    EXPECT_EXIT(validate(mcfg, rcfg), ::testing::ExitedWithCode(1),
                "granularity");
}

TEST(ConfigDeath, RejectsOversizedCbuf)
{
    MachineConfig mcfg;
    mcfg.memBytes = 1u << 20;
    RecorderConfig rcfg;
    rcfg.cbuf.entries = 1u << 16; // 4 MB of CBUF in a 1 MB guest
    EXPECT_EXIT(validate(mcfg, rcfg), ::testing::ExitedWithCode(1),
                "CBUF");
}

TEST(Config, DefaultsValidate)
{
    validate(MachineConfig{}, RecorderConfig{}); // must not exit
    SUCCEED();
}

TEST(Config, CoarserGranularityAccepted)
{
    RecorderConfig rcfg;
    rcfg.rnr.lineBytes = 256;
    validate(MachineConfig{}, rcfg);
    SUCCEED();
}

TEST(Trace, FlagNamesRoundTrip)
{
    for (int f = 0; f < numTraceFlags; ++f)
        EXPECT_STRNE(traceFlagName(static_cast<TraceFlag>(f)), "?");
}

TEST(Trace, OverrideGatesOutput)
{
    EXPECT_FALSE(traceEnabled(TraceFlag::Chunk)); // no QR_TRACE in env
    traceOverride(TraceFlag::Chunk, true);
    EXPECT_TRUE(traceEnabled(TraceFlag::Chunk));
    traceOverride(TraceFlag::Chunk, false);
    EXPECT_FALSE(traceEnabled(TraceFlag::Chunk));
}

TEST(Trace, TracedRunIsStillDeterministic)
{
    // Tracing must be observation-only: enabling every flag cannot
    // change the recorded execution.
    Workload a = makeRacyCounter(4, 300, false);
    RecordResult plain = recordProgram(a.program);
    for (int f = 0; f < numTraceFlags; ++f)
        traceOverride(static_cast<TraceFlag>(f), true);
    // Redirect stderr chatter away from the test log.
    std::FILE *saved = stderr;
    stderr = std::fopen("/dev/null", "w");
    Workload b = makeRacyCounter(4, 300, false);
    RecordResult traced = recordProgram(b.program);
    std::fclose(stderr);
    stderr = saved;
    for (int f = 0; f < numTraceFlags; ++f)
        traceOverride(static_cast<TraceFlag>(f), false);
    EXPECT_EQ(plain.logs.serialize(), traced.logs.serialize());
}

} // namespace
} // namespace qr
