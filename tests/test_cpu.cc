/**
 * @file
 * Core-model tests: store-buffer mechanics, TSO semantics (store
 * visibility delay + forwarding), atomics, and end-to-end execution of
 * hand-written guest programs on the assembled machine.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/session.hh"
#include "cpu/store_buffer.hh"
#include "guest/runtime.hh"
#include "kernel/syscall.hh"

namespace qr
{
namespace
{

TEST(StoreBuffer, FifoOrderAndCapacity)
{
    StoreBuffer sb(4);
    EXPECT_TRUE(sb.empty());
    for (Word i = 0; i < 4; ++i)
        sb.push(i * 4, i + 100);
    EXPECT_TRUE(sb.full());
    for (Word i = 0; i < 4; ++i) {
        auto e = sb.pop();
        EXPECT_EQ(e.addr, i * 4);
        EXPECT_EQ(e.data, i + 100);
    }
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, ForwardsYoungestMatch)
{
    StoreBuffer sb(8);
    sb.push(0x10, 1);
    sb.push(0x20, 2);
    sb.push(0x10, 3); // younger store to the same address
    EXPECT_EQ(sb.forward(0x10), std::optional<Word>(3));
    EXPECT_EQ(sb.forward(0x20), std::optional<Word>(2));
    EXPECT_EQ(sb.forward(0x30), std::nullopt);
}

TEST(StoreBufferDeath, OverflowAndUnderflow)
{
    StoreBuffer sb(1);
    sb.push(0, 0);
    EXPECT_DEATH(sb.push(4, 1), "overflow");
    sb.pop();
    EXPECT_DEATH(sb.pop(), "underflow");
}

/** Run a single-threaded program and return the machine's outputs. */
std::vector<std::uint8_t>
runProgram(const Program &prog)
{
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, prog, false);
    machine.run();
    auto it = machine.outputs().find(1);
    return it == machine.outputs().end()
        ? std::vector<std::uint8_t>{} : it->second;
}

/** Emit "write the word at addr, then exit". */
void
emitDumpAndExit(GuestBuilder &g, Addr addr, Word words = 1)
{
    g.sysWrite(addr, words * 4);
    g.sysExit(0);
}

Word
outWord(const std::vector<std::uint8_t> &out, std::size_t idx = 0)
{
    EXPECT_GE(out.size(), (idx + 1) * 4);
    Word w = 0;
    for (int b = 0; b < 4; ++b)
        w |= static_cast<Word>(out[idx * 4 + static_cast<std::size_t>(b)])
             << (8 * b);
    return w;
}

TEST(Core, StoreLoadThroughMemory)
{
    GuestBuilder g;
    Addr x = g.word();
    g.li(t1, x);
    g.li(t2, 1234);
    g.sw(t2, t1, 0);
    g.lw(t3, t1, 0); // must forward from the store buffer
    g.addi(t3, t3, 1);
    g.sw(t3, t1, 0);
    emitDumpAndExit(g, x);
    EXPECT_EQ(outWord(runProgram(g.finish())), 1235u);
}

TEST(Core, AtomicsSemantics)
{
    GuestBuilder g;
    Addr x = g.word(10);
    Addr results = g.block(4);
    g.li(t1, x);
    // fetchadd: returns old, adds
    g.li(t2, 5);
    g.fetchadd(t3, t1, t2); // t3 = 10, x = 15
    g.li(t4, results);
    g.sw(t3, t4, 0);
    // cas success: expected 15 -> 99
    g.li(t3, 15);
    g.li(t2, 99);
    g.cas(t3, t1, t2); // t3 = 15 (old), x = 99
    g.sw(t3, t4, 4);
    // cas failure: expected 15 but x is 99
    g.li(t3, 15);
    g.li(t2, 7);
    g.cas(t3, t1, t2); // t3 = 99, x unchanged
    g.sw(t3, t4, 8);
    // swap
    g.li(t3, 1);
    g.swap(t3, t1); // t3 = 99, x = 1
    g.sw(t3, t4, 12);
    g.lw(t5, t1, 0);
    g.li(t6, results); // results[0..3] already dumped; append x
    emitDumpAndExit(g, results, 4);
    auto out = runProgram(g.finish());
    EXPECT_EQ(outWord(out, 0), 10u);
    EXPECT_EQ(outWord(out, 1), 15u);
    EXPECT_EQ(outWord(out, 2), 99u);
    EXPECT_EQ(outWord(out, 3), 99u);
}

TEST(Core, TsoStoreVisibilityIsDelayed)
{
    // A store sits in the store buffer for a while before reaching
    // memory; a remote thread polling the location sees the old value
    // for at least one cycle. We verify the machinery end-to-end by
    // checking that a fence makes a store visible before a flag store,
    // i.e. the classic message-passing test never observes flag=1
    // with data=0.
    GuestBuilder g;
    Addr data = g.alignedBlock(1);
    Addr flag = g.alignedBlock(1);
    Addr seen = g.word(~0u);

    std::string body = "body";
    g.emitWorkerScaffold(2, body, [&] { g.sysWrite(seen, 4); });
    g.label(body);
    std::string producer = g.newLabel("prod");
    std::string spin = g.newLabel("spin");
    g.bne(a0, zero, producer);
    // consumer: wait for flag, then read data
    g.li(s2, flag);
    g.label(spin);
    g.lw(t1, s2, 0);
    g.beq(t1, zero, spin);
    g.li(s3, data);
    g.lw(t2, s3, 0);
    g.li(t3, seen);
    g.sw(t2, t3, 0);
    g.ret();
    // producer: data = 42; flag = 1 (TSO FIFO makes this safe)
    g.label(producer);
    g.li(s2, data);
    g.li(t1, 42);
    g.sw(t1, s2, 0);
    g.li(s3, flag);
    g.li(t1, 1);
    g.sw(t1, s3, 0);
    g.ret();

    Program prog = g.finish();
    for (std::uint32_t depth : {1u, 8u, 32u}) {
        MachineConfig mcfg;
        mcfg.core.sbDepth = depth;
        Machine machine(mcfg, RecorderConfig{}, prog, false);
        machine.run();
        auto it = machine.outputs().find(1);
        ASSERT_NE(it, machine.outputs().end());
        EXPECT_EQ(outWord(it->second), 42u) << "sbDepth=" << depth;
    }
}

TEST(Core, ProgramCountersAndCalls)
{
    GuestBuilder g;
    Addr out = g.word();
    g.call("five");
    g.li(t2, out);
    g.sw(a0, t2, 0);
    emitDumpAndExit(g, out);
    g.label("five");
    g.li(a0, 5);
    g.ret();
    EXPECT_EQ(outWord(runProgram(g.finish())), 5u);
}

TEST(CoreDeath, MisalignedStorePanics)
{
    GuestBuilder g;
    g.li(t1, 0x1001);
    g.sw(t1, t1, 0);
    g.sysExit(0);
    Program p = g.finish();
    EXPECT_DEATH(runProgram(p), "misaligned");
}

TEST(CoreDeath, RunawayPcPanics)
{
    GuestBuilder g;
    g.nop(); // no exit: falls off the end
    Program p = g.finish();
    EXPECT_DEATH(runProgram(p), "past end");
}

TEST(Core, NondetInstructionsProduceValues)
{
    GuestBuilder g;
    Addr out = g.block(3);
    g.rdtsc(t1);
    g.rdrand(t2);
    g.cpuid(t3);
    g.li(t4, out);
    g.sw(t1, t4, 0);
    g.sw(t2, t4, 4);
    g.sw(t3, t4, 8);
    emitDumpAndExit(g, out, 3);
    auto bytes = runProgram(g.finish());
    EXPECT_GT(outWord(bytes, 0), 0u); // some cycles have passed
    // cpuid on a single-threaded run: core 0
    EXPECT_EQ(outWord(bytes, 2), 0u);
}

TEST(Core, InstructionCountsAreExact)
{
    GuestBuilder g;
    g.li(t1, 10);
    std::string loop = g.newLabel("loop");
    g.label(loop);
    g.addi(t1, t1, -1);
    g.bne(t1, zero, loop);
    g.sysExit(0);
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    RunMetrics m = machine.run();
    // li + 10*(addi+bne) + li a0 + li a7 + syscall = 1+20+3 = 24
    EXPECT_EQ(m.instrs, 24u);
}

} // namespace
} // namespace qr
