/**
 * @file
 * Replayer tests, focused on failure detection: a corrupted or
 * truncated log must produce a precise divergence report, never a
 * crash and never a silently wrong replay.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "replay/log_reader.hh"
#include "workloads/micro.hh"

namespace qr
{
namespace
{

struct Recorded
{
    Workload w;
    RecordResult rec;
};

Recorded
recordRacy()
{
    Recorded r{makeRacyCounter(4, 300, false), {}};
    r.rec = recordProgram(r.w.program);
    return r;
}

TEST(Replay, CleanLogsReplayExactly)
{
    Recorded r = recordRacy();
    ReplayResult rep = replaySphere(r.w.program, r.rec.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(
        verifyDigests(r.rec.metrics.digests, rep.digests).ok);
    EXPECT_EQ(rep.replayedInstrs, r.rec.metrics.instrs);
    EXPECT_GT(rep.modeledCycles, 0u);
}

TEST(Replay, ReplayIsIdempotent)
{
    Recorded r = recordRacy();
    ReplayResult a = replaySphere(r.w.program, r.rec.logs);
    ReplayResult b = replaySphere(r.w.program, r.rec.logs);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.digests, b.digests);
}

/** Find a thread with at least @p n chunk records. */
Tid
threadWithChunks(const SphereLogs &logs, std::size_t n)
{
    for (const auto &[tid, t] : logs.threads)
        if (t.chunks.size() >= n)
            return tid;
    ADD_FAILURE() << "no thread with " << n << " chunks";
    return invalidTid;
}

TEST(Replay, DetectsDroppedChunkRecord)
{
    Recorded r = recordRacy();
    SphereLogs logs = r.rec.logs;
    Tid victim = threadWithChunks(logs, 3);
    auto &chunks = logs.threads.at(victim).chunks;
    chunks.erase(chunks.begin() + 1);
    ReplayResult rep = replaySphere(r.w.program, logs);
    // Either an explicit divergence or (if execution happens to
    // complete) mismatching digests -- never a silent pass.
    bool caught = !rep.ok ||
        !verifyDigests(r.rec.metrics.digests, rep.digests).ok;
    EXPECT_TRUE(caught);
}

TEST(Replay, DetectsCorruptedChunkSize)
{
    Recorded r = recordRacy();
    SphereLogs logs = r.rec.logs;
    Tid victim = threadWithChunks(logs, 2);
    logs.threads.at(victim).chunks[0].size += 3;
    ReplayResult rep = replaySphere(r.w.program, logs);
    bool caught = !rep.ok ||
        !verifyDigests(r.rec.metrics.digests, rep.digests).ok;
    EXPECT_TRUE(caught);
}

TEST(Replay, DetectsImpossibleRsw)
{
    Recorded r = recordRacy();
    SphereLogs logs = r.rec.logs;
    Tid victim = threadWithChunks(logs, 2);
    logs.threads.at(victim).chunks[0].rsw = 60000; // > any store queue
    ReplayResult rep = replaySphere(r.w.program, logs);
    ASSERT_FALSE(rep.ok);
    EXPECT_NE(rep.divergence.find("rsw"), std::string::npos);
}

TEST(Replay, DetectsMissingInputRecord)
{
    Recorded r = recordRacy();
    SphereLogs logs = r.rec.logs;
    auto &input = logs.threads.begin()->second.input;
    ASSERT_FALSE(input.empty());
    input.pop_back();
    ReplayResult rep = replaySphere(r.w.program, logs);
    EXPECT_FALSE(rep.ok);
}

TEST(Replay, DetectsWrongSyscallNumber)
{
    Recorded r = recordRacy();
    SphereLogs logs = r.rec.logs;
    for (auto &[tid, t] : logs.threads)
        for (auto &rec : t.input)
            if (rec.kind == InputKind::SyscallRet) {
                rec.num += 1;
                goto corrupted;
            }
corrupted:
    ReplayResult rep = replaySphere(r.w.program, logs);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.divergence.find("syscall"), std::string::npos);
}

TEST(Replay, DetectsMissingThreadLogs)
{
    Recorded r = recordRacy();
    SphereLogs logs = r.rec.logs;
    // Drop a whole worker thread's logs: its spawn is still in the
    // parent's record stream, and the remaining schedule can no
    // longer account for the recorded state.
    Tid victim = invalidTid;
    for (const auto &[tid, t] : logs.threads)
        if (tid != 1)
            victim = tid;
    ASSERT_NE(victim, invalidTid);
    logs.threads.erase(victim);
    ReplayResult rep = replaySphere(r.w.program, logs);
    bool caught = !rep.ok ||
        !verifyDigests(r.rec.metrics.digests, rep.digests).ok;
    EXPECT_TRUE(caught);
}

TEST(Replay, ScheduleIsTotallyOrderedAndComplete)
{
    Recorded r = recordRacy();
    auto schedule = buildSchedule(r.rec.logs);
    EXPECT_EQ(schedule.size(), r.rec.logs.totalChunks());
    for (std::size_t i = 1; i < schedule.size(); ++i) {
        bool ordered = schedule[i - 1].ts < schedule[i].ts ||
                       (schedule[i - 1].ts == schedule[i].ts &&
                        schedule[i - 1].tid < schedule[i].tid);
        EXPECT_TRUE(ordered) << "at " << i;
    }
}

TEST(Replay, ModeledReplayIsSlowerThanParallelRecord)
{
    // Software replay is sequential; on a 4-core recording it should
    // take longer (in modeled cycles) than the recorded run.
    Workload w = makeRacyCounter(4, 2000, true);
    RoundTrip rt = recordAndReplay(w.program);
    ASSERT_TRUE(rt.deterministic());
    EXPECT_GT(rt.replay.modeledCycles, rt.record.metrics.cycles);
}

} // namespace
} // namespace qr
