/**
 * @file
 * Guest-OS tests: thread lifecycle (spawn/join), futexes, yield,
 * sbrk, external input, signals, and scheduling/migration behavior.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/session.hh"
#include "guest/runtime.hh"
#include "kernel/syscall.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

Word
mainOutWord(Machine &machine, std::size_t idx = 0)
{
    auto it = machine.outputs().find(1);
    EXPECT_NE(it, machine.outputs().end());
    const auto &out = it->second;
    EXPECT_GE(out.size(), (idx + 1) * 4);
    Word w = 0;
    for (int b = 0; b < 4; ++b)
        w |= static_cast<Word>(out[idx * 4 + static_cast<std::size_t>(b)])
             << (8 * b);
    return w;
}

TEST(Kernel, SpawnJoinPassesArgumentAndRuns)
{
    GuestBuilder g;
    Addr result = g.word();
    Addr childStack = g.alignedBlock(256);

    // main
    g.liLabel(a0, "child");
    g.li(a1, childStack + 1024);
    g.li(a2, 77);
    g.sys(Sys::Spawn);
    g.sys(Sys::Join); // a0 = child tid from spawn
    g.sysWrite(result, 4);
    g.sysExit(0);
    // child: result = arg * 2
    g.label("child");
    g.slli(t1, a0, 1);
    g.li(t2, result);
    g.sw(t1, t2, 0);
    g.sysExit(0);

    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    RunMetrics m = machine.run();
    EXPECT_EQ(mainOutWord(machine), 154u);
    EXPECT_EQ(m.digests.exits.size(), 2u);
}

TEST(Kernel, ExitCodesAreCaptured)
{
    GuestBuilder g;
    g.sysExit(42);
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    RunMetrics m = machine.run();
    ASSERT_EQ(m.digests.exits.count(1), 1u);
    EXPECT_EQ(m.digests.exits.at(1).exitCode, 42u);
}

TEST(Kernel, SbrkBumpsAndAligns)
{
    GuestBuilder g;
    Addr out = g.block(2);
    g.li(a0, 100);
    g.sys(Sys::Sbrk);
    g.li(t1, out);
    g.sw(a0, t1, 0);
    g.li(a0, 4);
    g.sys(Sys::Sbrk);
    g.sw(a0, t1, 4);
    g.sysWrite(out, 8);
    g.sysExit(0);
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    machine.run();
    Word first = mainOutWord(machine, 0);
    Word second = mainOutWord(machine, 1);
    EXPECT_EQ(first % 64, 0u);
    EXPECT_EQ(second, first + 128); // 100 rounds up to 128
}

TEST(Kernel, ReadFillsBufferDeterministically)
{
    auto runOnce = [](std::uint64_t seed) {
        GuestBuilder g;
        Addr buf = g.block(4);
        g.li(a0, 0);
        g.li(a1, buf);
        g.li(a2, 16);
        g.sys(Sys::Read);
        g.sysWrite(buf, 16);
        g.sysExit(0);
        MachineConfig mcfg;
        mcfg.memBytes = 4u << 20;
        mcfg.kernel.inputSeed = seed;
        Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
        machine.run();
        return machine.outputs().at(1);
    };
    auto a = runOnce(1), b = runOnce(1), c = runOnce(2);
    EXPECT_EQ(a, b); // same external-input seed: same data
    EXPECT_NE(a, c); // different seed: different data
}

TEST(Kernel, FutexWaitReturnsEagainOnStaleValue)
{
    GuestBuilder g;
    Addr word = g.word(5);
    Addr out = g.word();
    g.li(a0, word);
    g.li(a1, 4); // expect 4, but the word holds 5
    g.sys(Sys::FutexWait);
    g.li(t1, out);
    g.sw(a0, t1, 0);
    g.sysWrite(out, 4);
    g.sysExit(0);
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    machine.run();
    EXPECT_EQ(mainOutWord(machine), futexEagain);
}

TEST(Kernel, FutexWakeOrderIsFifo)
{
    // Three waiters block on the same word; the main thread wakes
    // them one at a time. Each woken thread appends its id to a
    // shared sequence via fetchadd; FIFO wake order must equal block
    // order, which (with deterministic scheduling) is spawn order.
    GuestBuilder g;
    Addr fword = g.alignedBlock(1, 1);
    Addr seq = g.alignedBlock(8);
    Addr cursor = g.alignedBlock(1);
    Addr ready = g.alignedBlock(1);

    std::string body = "body";
    g.emitWorkerScaffold(4, body, [&] { g.sysWrite(seq, 12); });
    g.label(body);
    std::string waiter = g.newLabel("waiter");
    g.bne(a0, zero, waiter);
    // main (worker 0): wait until all three block, then wake one by
    // one. "Blocked" is approximated by waiting on the ready counter
    // then giving them time to reach futex-wait.
    std::string waitready = g.newLabel("waitready");
    g.li(s2, ready);
    g.label(waitready);
    g.lw(t1, s2, 0);
    g.li(t2, 3);
    g.bne(t1, t2, waitready);
    g.li(s3, 3);
    std::string wakeLoop = g.newLabel("wake");
    g.label(wakeLoop);
    // generous delay so the next waiter is truly asleep
    g.li(t1, 30000);
    std::string delay = g.newLabel("delay");
    g.label(delay);
    g.pause();
    g.addi(t1, t1, -1);
    g.bne(t1, zero, delay);
    g.li(a0, fword);
    g.li(a1, 1);
    g.sys(Sys::FutexWake);
    g.addi(s3, s3, -1);
    g.bne(s3, zero, wakeLoop);
    g.ret();
    // waiters: announce readiness, sleep, then log wake order.
    g.label(waiter);
    g.mv(s4, a0);
    g.li(t1, ready);
    g.li(t2, 1);
    g.fetchadd(t2, t1, t2);
    g.li(a0, fword);
    g.li(a1, 1);
    g.sys(Sys::FutexWait);
    g.li(t1, cursor);
    g.li(t2, 1);
    g.fetchadd(t2, t1, t2); // my slot
    g.slli(t2, t2, 2);
    g.li(t3, seq);
    g.add(t3, t3, t2);
    g.sw(s4, t3, 0);
    g.ret();

    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    machine.run();
    // Spawn order 1,2,3 blocked in that order -> woken in that order.
    EXPECT_EQ(mainOutWord(machine, 0), 1u);
    EXPECT_EQ(mainOutWord(machine, 1), 2u);
    EXPECT_EQ(mainOutWord(machine, 2), 3u);
}

TEST(Kernel, TimesliceForcesSwitchesWithMoreThreadsThanCores)
{
    Workload w = [] {
        GuestBuilder g;
        Addr sum = g.alignedBlock(1);
        std::string body = "body";
        g.emitWorkerScaffold(6, body, [&] { g.sysWrite(sum, 4); });
        g.label(body);
        g.li(s1, 20000);
        std::string loop = g.newLabel("loop");
        g.label(loop);
        g.addi(s1, s1, -1);
        g.bne(s1, zero, loop);
        g.li(t1, sum);
        g.li(t2, 1);
        g.fetchadd(t2, t1, t2);
        g.ret();
        return Workload{"sixthreads", "", 6, g.finish()};
    }();
    MachineConfig mcfg;
    mcfg.numCores = 2;
    mcfg.core.timeslice = 3000;
    Machine machine(mcfg, RecorderConfig{}, w.program, false);
    RunMetrics m = machine.run();
    EXPECT_GT(m.contextSwitches, 10u);
    EXPECT_GT(m.migrations, 0u); // threads move across the two cores
    EXPECT_EQ(mainOutWord(machine), 6u);
}

TEST(Kernel, SyscallCountsAreTracked)
{
    GuestBuilder g;
    g.sys(Sys::GetTid);
    g.sys(Sys::Time);
    g.sys(Sys::Random);
    g.sysExit(0);
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    RunMetrics m = machine.run();
    EXPECT_EQ(m.syscalls, 4u);
}

TEST(KernelDeath, UnknownSyscallPanics)
{
    GuestBuilder g;
    g.li(a7, 999);
    g.syscall();
    g.sysExit(0);
    Program p = g.finish();
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    EXPECT_DEATH(
        {
            Machine machine(mcfg, RecorderConfig{}, p, false);
            machine.run();
        },
        "unknown syscall");
}

} // namespace
} // namespace qr
