/**
 * @file
 * Capo3 tests: input-record and sphere-log serialization round-trips
 * (including randomized records), RSM bookkeeping and overhead
 * attribution, and log persistence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "capo/input_log.hh"
#include "capo/payload_view.hh"
#include "capo/log_store.hh"
#include "capo/sphere.hh"
#include "core/session.hh"
#include "replay/log_reader.hh"
#include "rnr/chunk_record.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/micro.hh"

namespace qr
{
namespace
{

InputRecord
randomRecord(Rng &rng)
{
    InputRecord r;
    r.kind = static_cast<InputKind>(rng.range(1, 5));
    r.num = rng.next32();
    r.ret = rng.next32();
    r.pc = rng.next32();
    r.sp = rng.next32();
    r.arg = rng.next32();
    r.parent = rng.next32();
    r.instrs = rng.next64();
    r.afterChunkSeq = rng.next64();
    if (r.kind == InputKind::SyscallRet) {
        if (rng.chance(1, 2)) {
            r.hasNewPc = true;
            r.newPc = rng.next32();
        }
        if (rng.chance(1, 2)) {
            r.copyAddr = rng.next32() & ~3u;
            std::uint64_t n = rng.below(20);
            for (std::uint64_t i = 0; i < n; ++i)
                r.copyWords.push_back(rng.next32());
        }
    }
    return r;
}

/** Zero the fields a record's kind does not serialize. */
InputRecord
canonical(const InputRecord &in)
{
    InputRecord r;
    r.kind = in.kind;
    switch (in.kind) {
      case InputKind::ThreadStart:
        r.pc = in.pc;
        r.sp = in.sp;
        r.arg = in.arg;
        r.parent = in.parent;
        break;
      case InputKind::SyscallRet:
        r.num = in.num;
        r.ret = in.ret;
        r.hasNewPc = in.hasNewPc;
        r.newPc = in.newPc;
        r.copyAddr = in.copyWords.empty() ? 0 : in.copyAddr;
        r.copyWords = in.copyWords;
        break;
      case InputKind::Nondet:
        r.num = in.num;
        r.ret = in.ret;
        break;
      case InputKind::SignalDeliver:
        r.num = in.num;
        r.afterChunkSeq = in.afterChunkSeq;
        r.pc = in.pc;
        r.sp = in.sp;
        r.copyAddr = in.copyAddr;
        break;
      case InputKind::ThreadExit:
        r.ret = in.ret;
        r.instrs = in.instrs;
        break;
    }
    return r;
}

TEST(InputLog, RandomRecordsRoundTrip)
{
    Rng rng(77);
    for (int trial = 0; trial < 500; ++trial) {
        InputRecord in = randomRecord(rng);
        std::vector<std::uint8_t> buf;
        in.serialize(buf);
        EXPECT_EQ(buf.size(), in.packedBytes());
        std::size_t pos = 0;
        InputRecord out = InputRecord::deserialize(buf, pos);
        EXPECT_EQ(pos, buf.size());
        EXPECT_EQ(out, canonical(in));
    }
}

TEST(SphereLogs, SerializeDeserializeRoundTrips)
{
    // Produce a real recording (so the logs have every record kind),
    // then round-trip it through the packed stream.
    Workload w = makeNondetMix(2, 60);
    RecordResult rec = recordProgram(w.program);
    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    SphereLogs back = SphereLogs::deserialize(bytes);
    EXPECT_EQ(back, rec.logs);
}

TEST(SphereLogs, FileSaveLoadRoundTrips)
{
    Workload w = makeRacyCounter(2, 200, false);
    RecordResult rec = recordProgram(w.program);
    std::string path = "/tmp/qr_test_sphere.qrs";
    SphereSaveResult saved = saveSphere(rec.logs, path);
    ASSERT_TRUE(saved) << saved.error;
    EXPECT_GT(saved.bytes, 0u);
    SphereLoadResult back = loadSphere(path);
    ASSERT_TRUE(back) << back.error;
    EXPECT_EQ(back.logs, rec.logs);
    std::remove(path.c_str());
}

TEST(SphereLogs, MeasureMatchesSerializedContent)
{
    Workload w = makeProdCons(4, 40);
    RecordResult rec = recordProgram(w.program);
    LogSizes sizes = measureLogs(rec.logs);
    EXPECT_GT(sizes.inputBytes, 0u);
    EXPECT_GT(sizes.memoryBytes, 0u);
    EXPECT_EQ(sizes.chunkRecords, rec.logs.totalChunks());
    // The serialized sphere = header + both logs; it must be at least
    // as large as the payload accounting.
    EXPECT_GE(rec.logs.serialize().size(), sizes.total());
}

TEST(SphereLogsCorruption, CorruptMagicIsRejected)
{
    std::vector<std::uint8_t> junk = {'X', 'X', 'X', 'X', 0};
    EXPECT_THROW(SphereLogs::deserialize(junk), ParseError);
}

TEST(SphereLogsCorruption, EveryTruncationIsRecoverable)
{
    // Deserializing any strict prefix of a valid sphere must throw a
    // recoverable ParseError -- never crash, never return garbage that
    // compares equal to the original.
    Workload w = makeNondetMix(2, 30);
    RecordResult rec = recordProgram(w.program);
    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    ASSERT_GT(bytes.size(), 16u);
    // Every short prefix, then a spread of longer ones.
    for (std::size_t len = 0; len < bytes.size();
         len += (len < 64 ? 1 : 97)) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + len);
        EXPECT_THROW(SphereLogs::deserialize(cut), ParseError)
            << "prefix length " << len;
    }
    // Trailing garbage is rejected too.
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0xab);
    EXPECT_THROW(SphereLogs::deserialize(padded), ParseError);
}

TEST(SphereLogsCorruption, BitFlipsNeverCrash)
{
    // A single flipped bit either still parses (flip hit payload data)
    // or throws ParseError; it must never abort or throw anything
    // else. Every surviving parse must differ from or equal the
    // original without tripping internal asserts.
    Workload w = makeRacyCounter(2, 60, false);
    RecordResult rec = recordProgram(w.program);
    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    Rng rng(4242);
    for (int trial = 0; trial < 400; ++trial) {
        std::vector<std::uint8_t> mut = bytes;
        std::size_t byte = rng.below(mut.size());
        mut[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        try {
            SphereLogs parsed = SphereLogs::deserialize(mut);
            (void)parsed.totalChunks(); // must be safely usable
        } catch (const ParseError &) {
            // Recoverable rejection is the other acceptable outcome.
        }
    }
}

TEST(SphereLogsCorruption, LoadSphereReportsBadFiles)
{
    Workload w = makeRacyCounter(2, 50, false);
    RecordResult rec = recordProgram(w.program);
    std::string path = "/tmp/qr_test_corrupt.qrs";

    // Missing file.
    std::remove(path.c_str());
    SphereLoadResult missing = loadSphere(path);
    EXPECT_FALSE(missing);
    EXPECT_FALSE(missing.error.empty());

    // Zero-length file.
    { std::FILE *f = std::fopen(path.c_str(), "wb"); std::fclose(f); }
    SphereLoadResult empty = loadSphere(path);
    EXPECT_FALSE(empty);
    EXPECT_FALSE(empty.error.empty());

    // Truncated file: drop the tail half.
    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
        std::fclose(f);
    }
    SphereLoadResult cut = loadSphere(path);
    EXPECT_FALSE(cut);
    EXPECT_FALSE(cut.error.empty());

    // A record count far beyond the file size must be refused before
    // any allocation is attempted.
    std::vector<std::uint8_t> lying = {'Q', 'R', 'S', '1'};
    putVarint(lying, 1);          // sphereId
    putVarint(lying, 1 << 20);    // memBytes
    putVarint(lying, 1 << 19);    // userTop
    putVarint(lying, 1);          // one thread
    putVarint(lying, 0);          // tid
    putVarint(lying, 1u << 30);   // input records: impossible
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fwrite(lying.data(), 1, lying.size(), f);
        std::fclose(f);
    }
    SphereLoadResult huge = loadSphere(path);
    EXPECT_FALSE(huge);
    EXPECT_NE(huge.error.find("count"), std::string::npos)
        << huge.error;

    std::remove(path.c_str());
}

/** Minimal hand-built sphere: one thread, strictly monotonic chunks. */
SphereLogs
tinySphere(Timestamp ts0, Timestamp ts1)
{
    SphereLogs logs;
    logs.memBytes = 1 << 20;
    logs.userTop = 1 << 19;
    ChunkRecord a;
    a.ts = ts0;
    a.tid = 0;
    a.size = 10;
    ChunkRecord b = a;
    b.ts = ts1;
    logs.threads[0].chunks = {a, b};
    return logs;
}

TEST(SphereLogsCorruption, FutureVersionIsRejectedRecoverably)
{
    Workload w = makeRacyCounter(2, 40, false);
    RecordResult rec = recordProgram(w.program);
    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    ASSERT_GE(bytes.size(), 4u);
    for (char v : {'4', '5', '9'}) {
        std::vector<std::uint8_t> mut = bytes;
        mut[3] = static_cast<std::uint8_t>(v);
        try {
            SphereLogs::deserialize(mut);
            FAIL() << "version '" << v << "' accepted";
        } catch (const ParseError &e) {
            // The message must tell the user it's a versioning problem,
            // not generic corruption.
            EXPECT_NE(std::string(e.what()).find("future"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(SphereLogsCorruption, NonMonotonicTimestampsAreRejected)
{
    // Equal timestamps within a thread violate the Lamport
    // construction; a corrupted stream decoding to a zero delta must be
    // refused at parse time, not crash chunksByTimestamp() later.
    std::vector<std::uint8_t> bytes = tinySphere(3, 3).serialize();
    EXPECT_THROW(SphereLogs::deserialize(bytes), ParseError);
    // buildSchedule on the in-memory equivalent is recoverable too.
    EXPECT_THROW(buildSchedule(tinySphere(3, 3)), ParseError);
    // The well-formed variant parses.
    std::vector<std::uint8_t> ok = tinySphere(3, 4).serialize();
    EXPECT_EQ(SphereLogs::deserialize(ok), tinySphere(3, 4));
}

TEST(SphereLogsCorruption, OutOfRangeTidIsRejected)
{
    SphereLogs logs = tinySphere(1, 2);
    auto node = logs.threads.extract(0);
    Tid huge = (1 << 20) + 1;
    node.key() = huge;
    for (ChunkRecord &rec : node.mapped().chunks)
        rec.tid = huge;
    logs.threads.insert(std::move(node));
    std::vector<std::uint8_t> bytes = logs.serialize();
    EXPECT_THROW(SphereLogs::deserialize(bytes), ParseError);
}

TEST(MappedSegmentWriterTest, BitIdenticalToTheBufferedWriter)
{
    if (!MappedSegmentWriter::available())
        GTEST_SKIP() << "mmap writing not compiled in";
    Workload w = makeRacyCounter(4, 500, false);
    RecordResult rec = recordProgram(w.program);
    std::vector<std::uint8_t> payload = rec.logs.serialize();

    std::string buffered = "/tmp/qr_test_writer_buffered.qrs";
    std::string mapped = "/tmp/qr_test_writer_mapped.qrs";
    SegmentedWriteResult wr = writeSegmented(payload, buffered);
    ASSERT_TRUE(wr) << wr.error;

    MappedSegmentWriter mw;
    ASSERT_TRUE(mw.create(mapped)) << mw.error();
    // Ragged appends: the container layout must depend only on the
    // payload bytes, never on the append granularity.
    std::size_t off = 0, step = 1;
    while (off < payload.size()) {
        std::size_t n = std::min(step, payload.size() - off);
        mw.append(payload.data() + off, n);
        off += n;
        step = step * 2 + 3;
    }
    EXPECT_EQ(mw.payloadBytes(), payload.size());
    ASSERT_GT(mw.seal(), 0u) << mw.error();

    auto slurp = [](const std::string &p) {
        std::vector<std::uint8_t> bytes;
        std::FILE *f = std::fopen(p.c_str(), "rb");
        EXPECT_NE(f, nullptr) << p;
        if (!f)
            return bytes;
        std::uint8_t buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.insert(bytes.end(), buf, buf + n);
        std::fclose(f);
        return bytes;
    };
    EXPECT_EQ(slurp(mapped), slurp(buffered));
    std::remove(buffered.c_str());
    std::remove(mapped.c_str());
}

// --- checked-in corruption corpus ---------------------------------------
//
// tests/corpus/ holds a known-good sealed sphere (intact.qrs) plus
// deterministic byte-level corruptions of it, generated once from
// makeRacyCounter(4, 1000, false). These pin down the on-disk QSG1
// format: a loader regression that crashes -- or silently accepts -- a
// damaged artifact fails here even if the in-process round-trip tests
// still pass.

#ifdef QR_CORPUS_DIR

static std::string
corpusPath(const char *name)
{
    return std::string(QR_CORPUS_DIR) + "/" + name;
}

TEST(SphereCorpus, IntactFileLoadsAndRecoversComplete)
{
    SphereLoadResult loaded = loadSphere(corpusPath("intact.qrs"));
    ASSERT_TRUE(loaded) << loaded.error;
    EXPECT_GT(loaded.logs.totalChunks(), 0u);

    SphereRecoverResult rec = recoverSphere(corpusPath("intact.qrs"));
    ASSERT_TRUE(rec) << rec.error;
    EXPECT_TRUE(rec.complete);
    EXPECT_TRUE(rec.note.empty()) << rec.note;
    EXPECT_EQ(rec.logs, loaded.logs);
}

TEST(SphereCorpus, TornTailSalvagesTheSealedPrefix)
{
    // The tail (trailer + part of the last segment) never hit disk.
    SphereLoadResult loaded = loadSphere(corpusPath("torn_tail.qrs"));
    EXPECT_FALSE(loaded);
    EXPECT_FALSE(loaded.error.empty());

    SphereRecoverResult rec = recoverSphere(corpusPath("torn_tail.qrs"));
    ASSERT_TRUE(rec) << rec.error;
    EXPECT_FALSE(rec.complete);
    EXPECT_GT(rec.segmentsSalvaged, 0u);
    EXPECT_GT(rec.threadsSalvaged + rec.threadsPartial, 0u);
    EXPECT_FALSE(rec.note.empty());
}

TEST(SphereCorpus, FlippedTrailerChecksumKeepsEveryLog)
{
    // Only the seal is damaged: every data segment checksums clean, so
    // salvage recovers the full payload (it just cannot prove
    // completeness).
    SphereLoadResult loaded = loadSphere(corpusPath("bad_trailer.qrs"));
    EXPECT_FALSE(loaded);

    SphereRecoverResult rec =
        recoverSphere(corpusPath("bad_trailer.qrs"));
    ASSERT_TRUE(rec) << rec.error;
    EXPECT_FALSE(rec.complete);
    EXPECT_EQ(rec.threadsPartial, 0u);

    SphereLoadResult intact = loadSphere(corpusPath("intact.qrs"));
    ASSERT_TRUE(intact) << intact.error;
    EXPECT_EQ(rec.logs, intact.logs);
}

TEST(SphereCorpus, FlippedSegmentByteStopsSalvageAtTheDamage)
{
    // A bit flip inside segment 1 fails that segment's checksum;
    // salvage keeps segment 0 and drops everything after the damage.
    SphereLoadResult loaded = loadSphere(corpusPath("bad_segment.qrs"));
    EXPECT_FALSE(loaded);

    SphereRecoverResult rec =
        recoverSphere(corpusPath("bad_segment.qrs"));
    EXPECT_FALSE(rec.complete);
    if (rec.ok) {
        EXPECT_GE(rec.segmentsSalvaged, 1u);
        SphereLoadResult intact = loadSphere(corpusPath("intact.qrs"));
        ASSERT_TRUE(intact);
        EXPECT_LT(rec.logs.totalChunks(), intact.logs.totalChunks());
    }
}

TEST(SphereCorpus, DuplicatedSegmentIsNeverAcceptedAsComplete)
{
    // Each copy of the duplicated segment checksums clean, but the
    // whole-payload checksum and segment count in the trailer no
    // longer match -- the loader must not pass the doubled bytes to
    // the sphere parser as a sealed artifact.
    SphereLoadResult loaded = loadSphere(corpusPath("dup_segment.qrs"));
    EXPECT_FALSE(loaded);
    EXPECT_FALSE(loaded.error.empty());

    SphereRecoverResult rec =
        recoverSphere(corpusPath("dup_segment.qrs"));
    EXPECT_FALSE(rec.complete);
}

TEST(SphereCorpus, EmptyFileIsRejectedEverywhere)
{
    SphereLoadResult loaded = loadSphere(corpusPath("empty.qrs"));
    EXPECT_FALSE(loaded);
    EXPECT_FALSE(loaded.error.empty());

    SphereRecoverResult rec = recoverSphere(corpusPath("empty.qrs"));
    EXPECT_FALSE(rec);
    EXPECT_FALSE(rec.error.empty());
}

TEST(SphereCorpus, TruncatedMidSegmentIsARecoverableError)
{
    // The file ends in the middle of segment 3's payload (crash after
    // ~3.5 KiB hit disk). Strict loading must refuse -- pointing at
    // recovery, not crashing -- and salvage must keep exactly the
    // intact segment prefix.
    SphereLoadResult loaded =
        loadSphere(corpusPath("truncated_midseg.qrs"));
    EXPECT_FALSE(loaded);
    EXPECT_NE(loaded.error.find("torn"), std::string::npos)
        << loaded.error;
    EXPECT_NE(loaded.error.find("recover"), std::string::npos)
        << loaded.error;

    SphereRecoverResult rec =
        recoverSphere(corpusPath("truncated_midseg.qrs"));
    ASSERT_TRUE(rec) << rec.error;
    EXPECT_FALSE(rec.complete);
    EXPECT_EQ(rec.segmentsSalvaged, 3u);
    EXPECT_GT(rec.logs.totalChunks(), 0u);
    EXPECT_GT(rec.threadsSalvaged + rec.threadsPartial, 0u);
}

// --- mmap loader over the corpus -----------------------------------------
//
// MappedSphereFile is the zero-copy path the streaming analyzer rides.
// Every corpus shape must map -- or refuse -- without a crash, and the
// lazy per-segment checksum verification must fail exactly where the
// eager readSegmented() acceptance does.

/** Touch every payload byte through the lazy view; returns a sum so
 *  the loop cannot be optimized away. */
std::uint64_t
touchAll(const MappedSphereFile &map)
{
    PayloadView pv = map.payload();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < pv.size(); ++i)
        sum += pv[i];
    return sum;
}

TEST(MappedCorpus, IntactFileStreamsAndVerifies)
{
    MappedSphereFile map;
    ASSERT_TRUE(map.open(corpusPath("intact.qrs"))) << map.error();
    EXPECT_TRUE(map.isContainer());
    EXPECT_TRUE(map.sealed());
    EXPECT_TRUE(map.canStream());
    EXPECT_EQ(map.verifyAll(), "");
    EXPECT_GT(map.payloadBytes(), 0u);

    SphereLoadResult eager = loadSphere(corpusPath("intact.qrs"));
    ASSERT_TRUE(eager) << eager.error;
    EXPECT_EQ(SphereLogs::deserialize(map.payload()), eager.logs);
}

TEST(MappedCorpus, TornTailFailsTheStructuralWalk)
{
    // open() does no hashing, but the structural walk still sees the
    // mid-record cut -- a torn file never reaches the lazy path.
    MappedSphereFile map;
    EXPECT_FALSE(map.open(corpusPath("torn_tail.qrs")));
    EXPECT_TRUE(map.isContainer());
    EXPECT_FALSE(map.canStream());
    EXPECT_NE(map.error().find("torn"), std::string::npos)
        << map.error();
}

TEST(MappedCorpus, TruncatedMidSegmentFailsTheStructuralWalk)
{
    MappedSphereFile map;
    EXPECT_FALSE(map.open(corpusPath("truncated_midseg.qrs")));
    EXPECT_TRUE(map.isContainer());
    EXPECT_NE(map.error().find("segment 3"), std::string::npos)
        << map.error();
}

TEST(MappedCorpus, FlippedTrailerIsCaughtByVerifyAllOnly)
{
    // Every data segment checksums clean, so lazy streaming reads the
    // whole payload happily; only the eager whole-payload acceptance
    // (what loadSphere uses) can see the broken seal.
    MappedSphereFile map;
    ASSERT_TRUE(map.open(corpusPath("bad_trailer.qrs")))
        << map.error();
    EXPECT_TRUE(map.canStream());
    EXPECT_NE(map.verifyAll().find("trailer checksum"),
              std::string::npos);
    EXPECT_NO_THROW((void)touchAll(map));
}

TEST(MappedCorpus, FlippedSegmentByteThrowsOnFirstTouch)
{
    // The structural walk passes (lengths are fine); the flipped byte
    // surfaces as ParseError on the first touch of segment 1, and as
    // a verifyAll() failure in readSegmented()'s words.
    MappedSphereFile map;
    ASSERT_TRUE(map.open(corpusPath("bad_segment.qrs")))
        << map.error();
    EXPECT_TRUE(map.canStream());
    EXPECT_THROW((void)touchAll(map), ParseError);
    EXPECT_NE(map.verifyAll().find("segment 1 checksum"),
              std::string::npos);
}

TEST(MappedCorpus, DuplicatedSegmentFailsTheTrailerCount)
{
    MappedSphereFile map;
    EXPECT_FALSE(map.open(corpusPath("dup_segment.qrs")));
    EXPECT_TRUE(map.isContainer());
    EXPECT_NE(map.error().find("segments"), std::string::npos)
        << map.error();
}

TEST(MappedCorpus, EmptyFileIsNotAContainer)
{
    MappedSphereFile map;
    EXPECT_FALSE(map.open(corpusPath("empty.qrs")));
    EXPECT_FALSE(map.isContainer());
    EXPECT_FALSE(map.error().empty());
}

TEST(SphereCorpus, SalvagedSpheresReplayDegraded)
{
    // A salvaged prefix is a usable recording, not garbage: degraded
    // replay must complete (possibly with incomplete threads), while
    // strict replay of the same salvage may legitimately refuse.
    SphereRecoverResult rec = recoverSphere(corpusPath("torn_tail.qrs"));
    ASSERT_TRUE(rec) << rec.error;
    Workload w = makeRacyCounter(4, 1000, false);
    ReplayResult rep =
        replaySphere(w.program, rec.logs, ReplayMode::Degraded);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.degradedMode);
}

#endif // QR_CORPUS_DIR

TEST(SphereLogsV2, PlainSpheresKeepTheLegacyV1Encoding)
{
    // A sphere without v2 payload must stay byte-compatible with old
    // readers: magic "QRS1".
    SphereLogs logs = tinySphere(1, 2);
    std::vector<std::uint8_t> bytes = logs.serialize();
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_EQ(bytes[3], '1');
    EXPECT_EQ(SphereLogs::deserialize(bytes), logs);
}

TEST(SphereLogsV2, ShadowRecordingRoundTripsThroughV2)
{
    Workload w = makeRaceDemo(4, 80, true);
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = true;
    RecordResult rec = recordProgram(w.program, {}, rcfg);

    EXPECT_TRUE(rec.logs.meta.exactShadow);
    EXPECT_TRUE(rec.logs.hasShadows());
    bool anySync = false;
    for (const auto &[tid, tl] : rec.logs.threads) {
        EXPECT_EQ(tl.shadows.size(), tl.chunks.size()) << "tid " << tid;
        anySync |= !tl.syncs.empty();
    }
    EXPECT_TRUE(anySync) << "spawn/join edges missing";

    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_EQ(bytes[3], '2');
    SphereLogs back = SphereLogs::deserialize(bytes);
    EXPECT_EQ(back, rec.logs);
}

TEST(SphereLogsV2, BitFlipsNeverCrashTheV2Reader)
{
    // Same fuzz contract as the v1 reader, over the richer v2 stream
    // (meta, sync points, shadow sets): parse or ParseError, never an
    // abort.
    Workload w = makeRaceDemo(2, 50, true);
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = true;
    RecordResult rec = recordProgram(w.program, {}, rcfg);
    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    Rng rng(1717);
    for (int trial = 0; trial < 400; ++trial) {
        std::vector<std::uint8_t> mut = bytes;
        std::size_t byte = rng.below(mut.size());
        mut[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        try {
            SphereLogs parsed = SphereLogs::deserialize(mut);
            (void)parsed.totalChunks();
            (void)parsed.hasShadows();
        } catch (const ParseError &) {
            // Recoverable rejection is the other acceptable outcome.
        }
    }
}

TEST(Rsm, OverheadAttributionCoversActiveCategories)
{
    // prodcons exercises futex syscalls, input records, context
    // switches and CBUF drains.
    Workload w = makeProdCons(4, 80);
    RecordResult rec = recordProgram(w.program);
    const RunMetrics &m = rec.metrics;
    EXPECT_GT(m.overheadCycles[static_cast<int>(
                  OverheadCat::SyscallIntercept)], 0u);
    EXPECT_GT(m.overheadCycles[static_cast<int>(
                  OverheadCat::CtxSwitch)], 0u);
    EXPECT_GT(m.overheadCycles[static_cast<int>(
                  OverheadCat::SphereMgmt)], 0u);
    EXPECT_EQ(m.recordingOverheadCycles,
              [&] {
                  std::uint64_t sum = 0;
                  for (int c = 0; c < numOverheadCats; ++c)
                      sum += m.overheadCycles[c];
                  return sum;
              }());
}

TEST(Rsm, CopyLoggingChargedForReadSyscalls)
{
    Workload w = makeNondetMix(2, 120);
    RecordResult rec = recordProgram(w.program);
    EXPECT_GT(rec.metrics.overheadCycles[static_cast<int>(
                  OverheadCat::CopyLogging)], 0u);
    EXPECT_GT(rec.metrics.overheadCycles[static_cast<int>(
                  OverheadCat::NondetEmu)], 0u);
}

TEST(Rsm, ChunkLogsAreSortedPerThread)
{
    Workload w = makeRacyCounter(4, 400, false);
    MachineConfig mcfg;
    mcfg.core.timeslice = 2000; // force migrations
    RecordResult rec = recordProgram(w.program, mcfg);
    for (const auto &[tid, logs] : rec.logs.threads)
        for (std::size_t i = 1; i < logs.chunks.size(); ++i)
            EXPECT_LT(logs.chunks[i - 1].ts, logs.chunks[i].ts)
                << "tid " << tid;
}

TEST(Rsm, SmallCbufForcesMoreDrains)
{
    Workload w = makeRacyCounter(4, 1500, false);
    RecorderConfig small;
    small.cbuf.entries = 64;
    RecorderConfig large;
    large.cbuf.entries = 16384;
    RecordResult a = recordProgram(w.program, MachineConfig{}, small);
    RecordResult b = recordProgram(w.program, MachineConfig{}, large);
    EXPECT_GT(a.metrics.cbufDrains, b.metrics.cbufDrains);
}

} // namespace
} // namespace qr
