/**
 * @file
 * Unit tests for QR-ISA: encoding round-trips, the assembler's labels
 * and data allocation, the disassembler, and the shared pure-execution
 * semantics used by both the core and the replayer.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "isa/exec.hh"
#include "isa/instruction.hh"
#include "sim/rng.hh"

namespace qr
{
namespace
{

TEST(Instruction, EncodeDecodeRoundTripsAllOpcodes)
{
    Rng rng(42);
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        for (int trial = 0; trial < 16; ++trial) {
            Instruction in;
            in.op = static_cast<Opcode>(op);
            in.rd = static_cast<std::uint8_t>(rng.below(numRegs));
            in.rs1 = static_cast<std::uint8_t>(rng.below(numRegs));
            in.rs2 = static_cast<std::uint8_t>(rng.below(numRegs));
            in.imm = rng.next32();
            EXPECT_EQ(Instruction::decode(in.encode()), in);
        }
    }
}

TEST(Instruction, Classifiers)
{
    EXPECT_TRUE(isMemOp(Opcode::Lw));
    EXPECT_TRUE(isMemOp(Opcode::Cas));
    EXPECT_FALSE(isMemOp(Opcode::Add));
    EXPECT_TRUE(isAtomic(Opcode::FetchAdd));
    EXPECT_FALSE(isAtomic(Opcode::Sw));
    EXPECT_TRUE(isNondet(Opcode::Rdtsc));
    EXPECT_FALSE(isNondet(Opcode::Syscall));
}

TEST(Instruction, NamesAreUnique)
{
    std::set<std::string> names;
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op)
        names.insert(opcodeName(static_cast<Opcode>(op)));
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(Opcode::NumOpcodes));
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler a;
    a.label("start");
    a.beq(zero, zero, "fwd"); // forward reference
    a.nop();
    a.label("fwd");
    a.j("start"); // backward reference
    Program p = a.finish();
    EXPECT_EQ(p.code[0].imm, 2u);
    EXPECT_EQ(p.code[2].imm, 0u);
}

TEST(Assembler, LiLabelResolves)
{
    Assembler a;
    a.liLabel(a0, "target");
    a.nop();
    a.label("target");
    a.nop();
    Program p = a.finish();
    EXPECT_EQ(p.code[0].op, Opcode::Li);
    EXPECT_EQ(p.code[0].imm, 2u);
}

TEST(Assembler, DataAllocationAndAlignment)
{
    Assembler a(0x1000);
    Addr w = a.word(7);
    EXPECT_EQ(w, 0x1000u);
    Addr blk = a.block(3);
    EXPECT_EQ(blk, 0x1004u);
    Addr aligned = a.alignedBlock(2);
    EXPECT_EQ(aligned % 64, 0u);
    EXPECT_GE(aligned, blk + 12);
    a.nop();
    Program p = a.finish();
    EXPECT_EQ(p.dataEnd % 64, 0u);
    EXPECT_GE(p.dataEnd, aligned + 8);
    // word(7) produced an init entry.
    bool found = false;
    for (auto [addr, val] : p.dataInit)
        found |= addr == w && val == 7;
    EXPECT_TRUE(found);
}

TEST(AssemblerDeath, DuplicateLabelPanics)
{
    Assembler a;
    a.label("x");
    EXPECT_DEATH(a.label("x"), "defined twice");
}

TEST(AssemblerDeath, UnknownLabelPanics)
{
    Assembler a;
    a.j("nowhere");
    EXPECT_DEATH(a.finish(), "not defined");
}

TEST(Disassembler, RendersRepresentativeForms)
{
    EXPECT_EQ(disassemble({Opcode::Add, a0, a1, a2, 0}),
              "add a0, a1, a2");
    EXPECT_EQ(disassemble({Opcode::Lw, t0, sp, 0, 8}), "lw t0, 8(sp)");
    EXPECT_EQ(disassemble({Opcode::Sw, 0, sp, t0,
                           static_cast<std::uint32_t>(-4)}),
              "sw t0, -4(sp)");
    EXPECT_EQ(disassemble({Opcode::Li, a0, 0, 0, 0x10}), "li a0, 0x10");
    EXPECT_EQ(disassemble({Opcode::Syscall, 0, 0, 0, 0}), "syscall");
    EXPECT_EQ(disassemble({Opcode::Beq, 0, a0, a1, 7}), "beq a0, a1, 7");
}

// --- pure execution semantics -------------------------------------------

class ExecPure : public ::testing::Test
{
  protected:
    ThreadContext ctx;
    Word nextPc = 0;

    Word
    run(Opcode op, Word r1, Word r2, std::uint32_t imm = 0)
    {
        ctx.pc = 10;
        ctx.setReg(a1, r1);
        ctx.setReg(a2, r2);
        Instruction in{op, a0, a1, a2, imm};
        EXPECT_TRUE(execPure(in, ctx, nextPc));
        return ctx.reg(a0);
    }
};

TEST_F(ExecPure, Arithmetic)
{
    EXPECT_EQ(run(Opcode::Add, 3, 4), 7u);
    EXPECT_EQ(run(Opcode::Sub, 3, 4), static_cast<Word>(-1));
    EXPECT_EQ(run(Opcode::Mul, 1000, 1000), 1000000u);
    EXPECT_EQ(run(Opcode::Divu, 17, 5), 3u);
    EXPECT_EQ(run(Opcode::Remu, 17, 5), 2u);
    // Division by zero is defined (all ones / dividend).
    EXPECT_EQ(run(Opcode::Divu, 17, 0), ~Word(0));
    EXPECT_EQ(run(Opcode::Remu, 17, 0), 17u);
}

TEST_F(ExecPure, LogicAndShifts)
{
    EXPECT_EQ(run(Opcode::And, 0xf0f0, 0xff00), 0xf000u);
    EXPECT_EQ(run(Opcode::Or, 0xf0f0, 0x0f0f), 0xffffu);
    EXPECT_EQ(run(Opcode::Xor, 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(run(Opcode::Sll, 1, 4), 16u);
    EXPECT_EQ(run(Opcode::Srl, 0x80000000u, 31), 1u);
    EXPECT_EQ(run(Opcode::Sra, 0x80000000u, 31), ~Word(0));
    // Shift amounts wrap at 32.
    EXPECT_EQ(run(Opcode::Sll, 1, 33), 2u);
}

TEST_F(ExecPure, Comparisons)
{
    EXPECT_EQ(run(Opcode::Slt, static_cast<Word>(-1), 0), 1u);
    EXPECT_EQ(run(Opcode::Sltu, static_cast<Word>(-1), 0), 0u);
    EXPECT_EQ(run(Opcode::Slti, static_cast<Word>(-5), 0,
                  static_cast<std::uint32_t>(-1)), 1u);
}

TEST_F(ExecPure, BranchesSetNextPc)
{
    ctx.pc = 10;
    ctx.setReg(a1, 5);
    ctx.setReg(a2, 5);
    Instruction beq{Opcode::Beq, 0, a1, a2, 99};
    EXPECT_TRUE(execPure(beq, ctx, nextPc));
    EXPECT_EQ(nextPc, 99u);
    Instruction bne{Opcode::Bne, 0, a1, a2, 99};
    EXPECT_TRUE(execPure(bne, ctx, nextPc));
    EXPECT_EQ(nextPc, 11u);
    // Signed vs unsigned branch disagreement on negative values.
    ctx.setReg(a1, static_cast<Word>(-2));
    ctx.setReg(a2, 1);
    Instruction blt{Opcode::Blt, 0, a1, a2, 50};
    EXPECT_TRUE(execPure(blt, ctx, nextPc));
    EXPECT_EQ(nextPc, 50u);
    Instruction bltu{Opcode::Bltu, 0, a1, a2, 50};
    EXPECT_TRUE(execPure(bltu, ctx, nextPc));
    EXPECT_EQ(nextPc, 11u);
}

TEST_F(ExecPure, JumpAndLink)
{
    ctx.pc = 20;
    Instruction jal{Opcode::Jal, ra, 0, 0, 5};
    EXPECT_TRUE(execPure(jal, ctx, nextPc));
    EXPECT_EQ(nextPc, 5u);
    EXPECT_EQ(ctx.reg(ra), 21u);
    ctx.pc = 30;
    ctx.setReg(a1, 100);
    Instruction jalr{Opcode::Jalr, ra, a1, 0, 2};
    EXPECT_TRUE(execPure(jalr, ctx, nextPc));
    EXPECT_EQ(nextPc, 102u);
    EXPECT_EQ(ctx.reg(ra), 31u);
}

TEST_F(ExecPure, RegisterZeroIsImmutable)
{
    ctx.setReg(zero, 77);
    EXPECT_EQ(ctx.reg(zero), 0u);
    Instruction in{Opcode::Li, zero, 0, 0, 42};
    EXPECT_TRUE(execPure(in, ctx, nextPc));
    EXPECT_EQ(ctx.reg(zero), 0u);
}

TEST_F(ExecPure, EnvironmentOpsAreRejected)
{
    for (Opcode op : {Opcode::Lw, Opcode::Sw, Opcode::Cas,
                      Opcode::FetchAdd, Opcode::Swap, Opcode::Fence,
                      Opcode::Syscall, Opcode::Rdtsc, Opcode::Rdrand,
                      Opcode::Cpuid}) {
        Instruction in{op, a0, a1, a2, 0};
        EXPECT_FALSE(execPure(in, ctx, nextPc)) << opcodeName(op);
    }
}

} // namespace
} // namespace qr
