/**
 * @file
 * Offline race analyzer tests: ground-truth twin workloads (a planted
 * race must be reported with its exact line address, the race-free
 * twin must analyze to zero races), degraded Bloom-only mode, the
 * recording-precision audit against deliberately tiny filters, vector
 * clock sanity, JSON emission, and malformed-sphere rejection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analyze/race_analyzer.hh"
#include "core/session.hh"
#include "sim/bench_json.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

RecordResult
recordExact(const Workload &w, std::uint32_t bloom_bits = 1024)
{
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = true;
    rcfg.rnr.bloom.bits = bloom_bits;
    return recordProgram(w.program, {}, rcfg);
}

TEST(RaceAnalyzer, RacyTwinFlagsExactlyThePlantedLine)
{
    Addr planted = 0;
    Workload w = makeRaceDemo(4, 150, true, &planted);
    ASSERT_NE(planted, 0u);
    RecordResult rec = recordExact(w);
    RaceReport rep = analyzeSphere(rec.logs);

    EXPECT_TRUE(rep.exact);
    EXPECT_EQ(rep.nThreads, 4u);
    ASSERT_FALSE(rep.races.empty());
    // Every racy line is the planted one -- nothing else in the
    // program races, so one distinct address and no false alarms.
    ASSERT_EQ(rep.racyLines.size(), 1u);
    EXPECT_EQ(rep.racyLines[0], planted);
    for (const ConflictEdge &e : rep.races) {
        EXPECT_TRUE(e.racy);
        ASSERT_EQ(e.lines.size(), 1u);
        EXPECT_EQ(e.lines[0], planted);
        EXPECT_NE(rep.schedule[e.from].tid, rep.schedule[e.to].tid);
    }
}

TEST(RaceAnalyzer, CleanTwinAnalyzesToZeroRaces)
{
    Workload w = makeRaceDemo(4, 150, false);
    RecordResult rec = recordExact(w);
    RaceReport rep = analyzeSphere(rec.logs);

    EXPECT_TRUE(rep.exact);
    // The post-join summing loop reads every worker's slot, so there
    // ARE cross-thread dependences -- they are all covered by the
    // spawn/join synchronization edges the kernel recorded.
    EXPECT_GT(rep.syncEdges, 0u);
    EXPECT_TRUE(rep.races.empty()) << rep.str();
    EXPECT_TRUE(rep.racyLines.empty());
}

TEST(RaceAnalyzer, DegradedModeStillFlagsTheRacyTwin)
{
    // No exact shadow sets: the analyzer falls back to conflict
    // terminations as possible-race candidates, without addresses.
    Workload racy = makeRaceDemo(4, 150, true);
    RecordResult rec = recordProgram(racy.program);
    EXPECT_FALSE(rec.logs.hasShadows());
    RaceReport rep = analyzeSphere(rec.logs);
    EXPECT_FALSE(rep.exact);
    EXPECT_FALSE(rep.races.empty());
    EXPECT_TRUE(rep.racyLines.empty());
    for (const ConflictEdge &e : rep.races)
        EXPECT_TRUE(e.lines.empty());

    Workload clean = makeRaceDemo(4, 150, false);
    RecordResult crec = recordProgram(clean.program);
    RaceReport crep = analyzeSphere(crec.logs);
    EXPECT_FALSE(crep.exact);
    EXPECT_TRUE(crep.races.empty()) << crep.str();
}

TEST(RaceAnalyzer, AuditClassifiesEveryConflictTermination)
{
    Addr planted = 0;
    Workload w = makeRaceDemo(4, 200, true, &planted);
    RecordResult rec = recordExact(w);
    RaceReport rep = analyzeSphere(rec.logs);

    std::uint64_t conflictTerms = 0;
    for (int r = 0; r < numChunkReasons; ++r)
        if (isConflictReason(static_cast<ChunkReason>(r)))
            conflictTerms += rep.reasonCounts[r];
    EXPECT_EQ(rep.audit.conflictTerminations, conflictTerms);
    EXPECT_EQ(rep.audit.trueConflicts + rep.audit.bloomFalseConflicts +
                  rep.audit.unattributed,
              rep.audit.conflictTerminations);
    // With the default 1024-bit filters and this tiny footprint the
    // terminations are all genuine: the planted counter really is
    // shared.
    EXPECT_GT(rep.audit.trueConflicts, 0u);
    EXPECT_EQ(rep.audit.falseConflictRate(), 0.0) << rep.str();
}

TEST(RaceAnalyzer, TinyFiltersProduceBloomFalseConflicts)
{
    // Shrink the filters to the 64-bit minimum on a workload with real
    // sharing: chunks insert many distinct lines, so remote accesses to
    // lines a chunk never touched alias into its filter. The audit must
    // attribute those terminations to the Bloom filter.
    Workload w = makeByName("fft", 4, 1);
    RecordResult rec = recordExact(w, /*bloom_bits=*/64);
    ASSERT_GT(rec.metrics.falseConflicts, 0u)
        << "recording did not alias; shrink the filter further";
    RaceReport rep = analyzeSphere(rec.logs);
    EXPECT_GT(rep.audit.conflictTerminations, 0u);
    EXPECT_GT(rep.audit.bloomFalseConflicts, 0u) << rep.str();
    EXPECT_GT(rep.audit.falseConflictRate(), 0.0);
    EXPECT_EQ(rep.audit.trueConflicts + rep.audit.bloomFalseConflicts +
                  rep.audit.unattributed,
              rep.audit.conflictTerminations);
}

TEST(RaceAnalyzer, VectorClocksOrderProgramAndJoin)
{
    Workload w = makeRaceDemo(4, 100, false);
    RecordResult rec = recordExact(w);
    RaceReport rep = analyzeSphere(rec.logs);
    ASSERT_TRUE(rep.races.empty());
    ASSERT_GT(rep.nChunks, 2u);

    // Program order: consecutive chunks of one thread are always
    // clock-ordered.
    auto byThread = SphereLogs::chunkIndexByThread(rep.schedule);
    for (const auto &[tid, positions] : byThread)
        for (std::size_t p = 1; p < positions.size(); ++p)
            EXPECT_TRUE(rep.happensBefore(positions[p - 1],
                                          positions[p]))
                << "tid " << tid << " position " << p;

    // Join order: main exits last, after joining every worker, so its
    // final chunk is clock-after every chunk of the run.
    std::uint32_t last = static_cast<std::uint32_t>(rep.nChunks) - 1;
    for (std::uint32_t i = 0; i < last; ++i)
        EXPECT_TRUE(rep.happensBefore(i, last)) << "chunk " << i;
}

TEST(RaceAnalyzer, RacyEndpointsAreConcurrentByVectorClock)
{
    Workload w = makeRaceDemo(4, 150, true);
    RecordResult rec = recordExact(w);
    RaceReport rep = analyzeSphere(rec.logs);
    ASSERT_FALSE(rep.races.empty());
    // A race is exactly a pair the clocks do not order.
    for (std::size_t i = 0; i < rep.races.size() && i < 10; ++i) {
        const ConflictEdge &e = rep.races[i];
        EXPECT_FALSE(rep.happensBefore(e.from, e.to)) << i;
        EXPECT_FALSE(rep.happensBefore(e.to, e.from)) << i;
    }
}

TEST(RaceAnalyzer, BenchDocRoundTripsThroughTheJsonParser)
{
    Workload w = makeRaceDemo(2, 80, true);
    RecordResult rec = recordExact(w);
    RaceReport rep = analyzeSphere(rec.logs);
    BenchDoc doc = rep.toBenchDoc("race-demo-racy");
    EXPECT_EQ(doc.bench, "ANALYZE");

    BenchDoc parsed;
    std::string err;
    ASSERT_TRUE(parseBenchJson(doc.str(), parsed, err)) << err;
    EXPECT_EQ(parsed.bench, "ANALYZE");
    auto find = [&](const char *metric) -> const BenchResult * {
        for (const BenchResult &r : parsed.results)
            if (r.metric == metric)
                return &r;
        return nullptr;
    };
    const BenchResult *races = find("races");
    ASSERT_NE(races, nullptr);
    EXPECT_EQ(races->value, static_cast<double>(rep.races.size()));
    const BenchResult *rate = find("false_conflict_rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_EQ(rate->value, rep.audit.falseConflictRate());
    ASSERT_NE(find("chunks"), nullptr);
    EXPECT_EQ(find("chunks")->value,
              static_cast<double>(rep.nChunks));
}

/**
 * A sphere whose race fixpoint needs exactly 65 rounds: 65 WAW edges
 * on distinct lines forming strictly nested (from, to) intervals, so
 * each edge is covered only through the next-inner one and the Jacobi
 * iteration peels exactly one edge per round, innermost first.
 */
SphereLogs
makeNestedConflictChain()
{
    SphereLogs logs;
    logs.meta.exactShadow = true;
    ThreadLogs &a = logs.threads[1];
    ThreadLogs &b = logs.threads[2];
    auto chunk = [](Tid tid, Timestamp ts) {
        ChunkRecord c;
        c.tid = tid;
        c.ts = ts;
        c.size = 10;
        c.reason = ChunkReason::Drain;
        return c;
    };
    auto line = [](int i) { return 0x10000 + Addr(i) * 64; };
    for (int i = 1; i <= 65; ++i) {
        a.chunks.push_back(chunk(1, Timestamp(i)));
        a.shadows.push_back({{}, {line(i)}});
        // B's chunk at ts 66+k rewrites A's line 65-k: edge i spans
        // (ts i, ts 131-i), nested strictly inside edge i-1.
        b.chunks.push_back(chunk(2, Timestamp(65 + i)));
        b.shadows.push_back({{}, {line(66 - i)}});
    }
    return logs;
}

TEST(RaceAnalyzer, FixpointCapIsReportedNotSilent)
{
    SphereLogs logs = makeNestedConflictChain();
    RaceReport rep = analyzeSphere(logs);
    EXPECT_TRUE(rep.fixpointCapped);
    EXPECT_EQ(rep.fixpointRounds, 64u);
    // 64 rounds peel 64 of the 65 edges; the outermost is still
    // (wrongly) reported as synchronized, hence the warning.
    EXPECT_EQ(rep.races.size(), 64u);
    EXPECT_NE(rep.str().find("warning: race fixpoint hit the 64-round "
                             "cap"),
              std::string::npos);
    EXPECT_NE(rep.toBenchDoc("nested-chain").str()
                  .find("fixpoint_capped"),
              std::string::npos);
}

TEST(RaceAnalyzer, UncappedFixpointConvergesOnTheNestedChain)
{
    SphereLogs logs = makeNestedConflictChain();
    RaceReport rep = analyzeSphere(logs, /*fixpoint_cap=*/0);
    EXPECT_FALSE(rep.fixpointCapped);
    // Rounds 1..65 each kill one edge; round 66 confirms convergence.
    EXPECT_EQ(rep.fixpointRounds, 66u);
    EXPECT_EQ(rep.races.size(), 65u);
    EXPECT_EQ(rep.str().find("warning: race fixpoint"),
              std::string::npos);
}

TEST(RaceAnalyzer, MalformedSphereThrowsParseErrorNotAbort)
{
    // Non-monotonic per-thread timestamps violate the Lamport
    // construction; the analyzer must reject them recoverably.
    SphereLogs logs;
    ChunkRecord a;
    a.ts = 5;
    a.tid = 1;
    a.size = 10;
    ChunkRecord b = a; // same timestamp: impossible in a valid log
    logs.threads[1].chunks = {a, b};
    EXPECT_THROW(analyzeSphere(logs), ParseError);
}

TEST(RaceAnalyzer, MismatchedShadowsDegradeInsteadOfCrashing)
{
    Workload w = makeRaceDemo(2, 60, true);
    RecordResult rec = recordExact(w);
    ASSERT_TRUE(rec.logs.hasShadows());
    // Drop one shadow set: the sphere no longer carries a full exact
    // view, so the analyzer falls back to degraded mode.
    auto &tl = rec.logs.threads.begin()->second;
    ASSERT_FALSE(tl.shadows.empty());
    tl.shadows.pop_back();
    EXPECT_FALSE(rec.logs.hasShadows());
    RaceReport rep = analyzeSphere(rec.logs);
    EXPECT_FALSE(rep.exact);
}

TEST(RaceAnalyzer, EmptySphereProducesEmptyReport)
{
    SphereLogs logs;
    RaceReport rep = analyzeSphere(logs);
    EXPECT_EQ(rep.nChunks, 0u);
    EXPECT_TRUE(rep.races.empty());
    EXPECT_EQ(rep.totalEdges, 0u);
    EXPECT_FALSE(rep.str().empty());
}

} // namespace
} // namespace qr
