/**
 * @file
 * Unit tests for the recording hardware: Bloom filters (no false
 * negatives, ever), chunk-record packing, the CBUF, and the RnrUnit's
 * chunking/conflict/Lamport behavior.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fault/fault_plan.hh"
#include "mem/memory.hh"
#include "rnr/bloom.hh"
#include "rnr/cbuf.hh"
#include "rnr/chunk_record.hh"
#include "rnr/rnr_unit.hh"
#include "sim/rng.hh"

namespace qr
{
namespace
{

TEST(Bloom, NeverForgetsInsertedAddresses)
{
    BloomFilter f(BloomParams{256, 2});
    Rng rng(1);
    std::vector<Addr> inserted;
    for (int i = 0; i < 200; ++i) {
        Addr a = static_cast<Addr>(rng.next32()) & ~63u;
        f.insert(a);
        inserted.push_back(a);
        for (Addr x : inserted)
            ASSERT_TRUE(f.test(x)); // zero false negatives, always
    }
}

TEST(Bloom, ClearEmptiesEverything)
{
    BloomFilter f(BloomParams{});
    f.insert(0x1000);
    ASSERT_TRUE(f.test(0x1000));
    f.clear();
    EXPECT_FALSE(f.test(0x1000));
    EXPECT_EQ(f.fill(), 0u);
    EXPECT_EQ(f.popcount(), 0u);
}

TEST(Bloom, FalsePositiveRateShrinksWithSize)
{
    Rng rng(2);
    std::vector<Addr> members, probes;
    for (int i = 0; i < 64; ++i)
        members.push_back((static_cast<Addr>(rng.next32()) & ~63u) |
                          0x10000000);
    for (int i = 0; i < 4000; ++i)
        probes.push_back(static_cast<Addr>(rng.next32()) & ~63u &
                         0x0fffffff);
    auto fpCount = [&](std::uint32_t bits) {
        BloomFilter f(BloomParams{bits, 2});
        for (Addr a : members)
            f.insert(a);
        int fp = 0;
        for (Addr p : probes)
            fp += f.test(p) ? 1 : 0;
        return fp;
    };
    int small = fpCount(128);
    int large = fpCount(4096);
    EXPECT_GT(small, large);
    EXPECT_LT(large, 40); // < 1% at 4096 bits / 64 entries
}

/**
 * Reference scalar Bloom filter: same double-hashing index derivation
 * as the optimized BloomFilter, but a plain bit vector with an
 * O(bits) flash clear and a recount-everything popcount. The property
 * test below proves the optimized filter (inline probes + dirty-word
 * clear) is observationally identical to this.
 */
class ReferenceBloom
{
  public:
    explicit ReferenceBloom(const BloomParams &p)
        : mask(p.bits - 1), nHashes(p.hashes), bits(p.bits, false)
    {}

    void
    insert(Addr line_addr)
    {
        forEachIndex(line_addr, [&](std::uint32_t b) { bits[b] = true; });
        inserts++;
    }

    bool
    test(Addr line_addr) const
    {
        bool hit = true;
        forEachIndex(line_addr, [&](std::uint32_t b) { hit &= bits[b]; });
        return hit;
    }

    void
    clear()
    {
        std::fill(bits.begin(), bits.end(), false);
        inserts = 0;
    }

    std::uint32_t fill() const { return inserts; }

    std::uint32_t
    popcount() const
    {
        std::uint32_t n = 0;
        for (bool b : bits)
            n += b;
        return n;
    }

  private:
    template <typename Fn>
    void
    forEachIndex(Addr line_addr, Fn fn) const
    {
        std::uint64_t h = mix64(line_addr);
        std::uint32_t h1 = static_cast<std::uint32_t>(h);
        std::uint32_t h2 = static_cast<std::uint32_t>(h >> 32) | 1u;
        for (int f = 0; f < nHashes; ++f) {
            fn(h1 & mask);
            h1 += h2;
        }
    }

    std::uint32_t mask;
    int nHashes;
    std::vector<bool> bits;
    std::uint32_t inserts = 0;
};

TEST(Bloom, MatchesReferenceOverRandomInsertClearSequences)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        BloomParams p;
        p.bits = 128u << (seed % 4);
        p.hashes = 1 + static_cast<int>(seed % 5);
        BloomFilter fast(p);
        ReferenceBloom ref(p);
        Rng rng(seed * 77);
        for (int step = 0; step < 5000; ++step) {
            switch (rng.below(8)) {
              case 0: // flash clear (chunk boundary)
                fast.clear();
                ref.clear();
                break;
              case 1: { // membership probe of a random address
                Addr probe = static_cast<Addr>(rng.next32()) & ~63u;
                ASSERT_EQ(fast.test(probe), ref.test(probe))
                    << "seed=" << seed << " step=" << step;
                break;
              }
              default: { // insert
                Addr a = static_cast<Addr>(rng.next32()) & ~63u;
                fast.insert(a);
                ref.insert(a);
                ASSERT_TRUE(fast.test(a));
                break;
              }
            }
            ASSERT_EQ(fast.fill(), ref.fill());
            ASSERT_EQ(fast.popcount(), ref.popcount())
                << "seed=" << seed << " step=" << step;
        }
    }
}

TEST(Bloom, DirtyListClearSurvivesHeavyReuse)
{
    // Exercises the touched-word bookkeeping across many short
    // chunk-like fill/clear rounds: stale bits surviving a clear would
    // surface as false positives against a fresh filter.
    BloomFilter f(BloomParams{1024, 2});
    Rng rng(9);
    for (int round = 0; round < 300; ++round) {
        std::vector<Addr> members;
        for (int i = 0; i < 5; ++i) {
            Addr a = static_cast<Addr>(rng.next32()) & ~63u;
            f.insert(a);
            members.push_back(a);
        }
        for (Addr a : members)
            ASSERT_TRUE(f.test(a));
        BloomFilter fresh(BloomParams{1024, 2});
        for (Addr a : members)
            fresh.insert(a);
        ASSERT_EQ(f.popcount(), fresh.popcount()) << "round " << round;
        f.clear();
        ASSERT_EQ(f.popcount(), 0u);
        ASSERT_EQ(f.fill(), 0u);
    }
}

TEST(Bloom, CountDuplicateAdvancesFillWithoutTouchingBits)
{
    BloomFilter f(BloomParams{});
    f.insert(0x1000);
    std::uint32_t pop = f.popcount();
    f.countDuplicate();
    EXPECT_EQ(f.fill(), 2u);
    EXPECT_EQ(f.popcount(), pop);
}

TEST(ChunkRecord, FixedLayoutRoundTrips)
{
    ChunkRecord rec{0x123456789aull, 70000, 12,
                    ChunkReason::ConflictWar, 3};
    Word words[4];
    rec.packWords(words);
    EXPECT_EQ(ChunkRecord::unpackWords(words), rec);
}

TEST(ChunkRecord, CompactEncodingRoundTrips)
{
    Rng rng(3);
    std::vector<std::uint8_t> buf;
    std::vector<ChunkRecord> recs;
    Timestamp ts = 0;
    for (int i = 0; i < 500; ++i) {
        ChunkRecord rec;
        ts += rng.below(100000);
        rec.ts = ts;
        rec.size = static_cast<std::uint32_t>(rng.below(1 << 20));
        rec.rsw = static_cast<std::uint16_t>(rng.below(16));
        // Any reason the hardware can log. ChunkReason::Device is
        // excluded by construction: device records are synthetic
        // schedule entries (replay/log_reader.cc), never serialized
        // through the compact on-disk encoding.
        do {
            rec.reason = static_cast<ChunkReason>(
                rng.below(numChunkReasons));
        } while (rec.reason == ChunkReason::Device);
        rec.tid = 5;
        recs.push_back(rec);
    }
    Timestamp prev = 0;
    for (const auto &rec : recs) {
        packCompact(rec, prev, buf);
        prev = rec.ts;
    }
    // Compact beats the fixed 16-byte layout on average.
    EXPECT_LT(buf.size(), recs.size() * ChunkRecord::cbufBytes);
    std::size_t pos = 0;
    prev = 0;
    for (const auto &rec : recs) {
        ChunkRecord out = unpackCompact(buf, pos, prev, 5);
        EXPECT_EQ(out, rec);
        prev = out.ts;
    }
    EXPECT_EQ(pos, buf.size());
}

TEST(Varint, RoundTripsEdgeValues)
{
    std::vector<std::uint8_t> buf;
    std::vector<std::uint64_t> values = {0, 1, 127, 128, 300, 1u << 20,
                                         ~0ull};
    for (auto v : values)
        putVarint(buf, v);
    std::size_t pos = 0;
    for (auto v : values)
        EXPECT_EQ(getVarint(buf, pos), v);
}

TEST(Cbuf, AppendDrainRoundTrips)
{
    Memory mem(1 << 20);
    Cbuf cbuf(CbufParams{64, 0.75}, mem, 0x1000, nullptr);
    std::vector<ChunkRecord> in;
    for (std::uint32_t i = 0; i < 40; ++i) {
        ChunkRecord rec{i + 1, i * 10, 0, ChunkReason::Syscall,
                        static_cast<Tid>(i % 4)};
        in.push_back(rec);
        cbuf.append(rec, i);
    }
    EXPECT_EQ(cbuf.occupancy(), 40u);
    std::vector<ChunkRecord> out = cbuf.drain();
    EXPECT_EQ(out, in);
    EXPECT_EQ(cbuf.occupancy(), 0u);
    // Records physically live in guest memory (word 2 = ts low).
    EXPECT_NE(mem.read(0x1008), 0u);
}

TEST(Cbuf, ThresholdAndFullSignals)
{
    Memory mem(1 << 20);
    Cbuf cbuf(CbufParams{16, 0.75}, mem, 0, nullptr);
    ChunkRecord rec{1, 1, 0, ChunkReason::Drain, 0};
    int thresholds = 0, fulls = 0;
    for (int i = 0; i < 16; ++i) {
        rec.ts++;
        Cbuf::Signal sig = cbuf.append(rec, 0);
        thresholds += sig == Cbuf::Signal::Threshold;
        fulls += sig == Cbuf::Signal::Full;
    }
    EXPECT_EQ(thresholds, 1); // fired exactly at 12 of 16
    EXPECT_EQ(fulls, 1);
    EXPECT_TRUE(cbuf.full());
}

TEST(CbufDeath, OverflowPanics)
{
    Memory mem(1 << 20);
    Cbuf cbuf(CbufParams{4, 0.75}, mem, 0, nullptr);
    ChunkRecord rec{1, 1, 0, ChunkReason::Drain, 0};
    for (int i = 0; i < 4; ++i)
        cbuf.append(rec, 0);
    EXPECT_DEATH(cbuf.append(rec, 0), "backpressure");
}

TEST(Cbuf, WrapsAroundTheRing)
{
    Memory mem(1 << 20);
    Cbuf cbuf(CbufParams{8, 0.99}, mem, 0, nullptr);
    ChunkRecord rec{0, 0, 0, ChunkReason::Drain, 0};
    for (int round = 0; round < 5; ++round) {
        for (std::uint32_t i = 0; i < 6; ++i) {
            rec.ts++;
            rec.size = static_cast<std::uint32_t>(rec.ts);
            cbuf.append(rec, 0);
        }
        auto out = cbuf.drain();
        ASSERT_EQ(out.size(), 6u);
        for (std::uint32_t i = 1; i < 6; ++i)
            EXPECT_EQ(out[i].ts, out[i - 1].ts + 1);
    }
}

// --- RnrUnit ----------------------------------------------------------------

struct UnitRig : SbOccupancySource
{
    UnitRig(RnrParams params = RnrParams{})
        : mem(1 << 20), cbuf(CbufParams{1024, 0.75}, mem, 0, nullptr),
          unit(0, params, cbuf)
    {
        unit.setSbSource(this);
        unit.enable(7);
    }

    std::uint32_t sbOccupancy() const override { return sbOcc; }

    Memory mem;
    Cbuf cbuf;
    RnrUnit unit;
    std::uint32_t sbOcc = 0;
};

TEST(RnrUnit, CountsAndLogsChunks)
{
    UnitRig rig;
    for (int i = 0; i < 10; ++i)
        rig.unit.onRetire(0);
    rig.unit.onLoad(0x100, 0);
    rig.unit.terminate(ChunkReason::Syscall, 0);
    auto recs = rig.cbuf.drain();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].size, 10u);
    EXPECT_EQ(recs[0].tid, 7);
    EXPECT_EQ(recs[0].reason, ChunkReason::Syscall);
}

TEST(RnrUnit, EmptyChunksAreSuppressed)
{
    UnitRig rig;
    rig.unit.terminate(ChunkReason::ContextSwitch, 0);
    rig.unit.terminate(ChunkReason::Syscall, 0);
    EXPECT_EQ(rig.cbuf.occupancy(), 0u);
    EXPECT_EQ(rig.unit.stats().emptyTerminations, 2u);
    // But a chunk with only filter activity (e.g. an input copy) IS
    // logged -- it anchors the copy in the replay order.
    rig.unit.onStoreDrain(0x200, 0);
    rig.unit.terminate(ChunkReason::ContextSwitch, 0);
    auto recs = rig.cbuf.drain();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].size, 0u);
}

TEST(RnrUnit, SizeOverflowTerminates)
{
    RnrParams p;
    p.maxChunkInstrs = 8;
    UnitRig rig(p);
    for (int i = 0; i < 20; ++i)
        rig.unit.onRetire(0);
    auto recs = rig.cbuf.drain();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].size, 8u);
    EXPECT_EQ(recs[0].reason, ChunkReason::SizeOverflow);
    EXPECT_EQ(recs[1].size, 8u);
}

TEST(RnrUnit, ConflictDirectionsAndReasons)
{
    auto runCase = [](bool local_write, BusOp remote_op,
                      ChunkReason expect, bool expect_hit) {
        UnitRig rig;
        rig.unit.onRetire(0);
        if (local_write)
            rig.unit.onStoreDrain(0x400, 0);
        else
            rig.unit.onLoad(0x400, 0);
        BusTxn txn{remote_op, 0x400, 1, 0};
        rig.unit.observeRemote(txn, 0);
        auto recs = rig.cbuf.drain();
        if (!expect_hit) {
            EXPECT_TRUE(recs.empty());
            return;
        }
        ASSERT_EQ(recs.size(), 1u);
        EXPECT_EQ(recs[0].reason, expect);
    };
    // Remote read vs local write: RAW.
    runCase(true, BusOp::BusRd, ChunkReason::ConflictRaw, true);
    // Remote write vs local read: WAR.
    runCase(false, BusOp::BusRdX, ChunkReason::ConflictWar, true);
    runCase(false, BusOp::BusUpgr, ChunkReason::ConflictWar, true);
    // Remote write vs local write: WAW.
    runCase(true, BusOp::BusRdX, ChunkReason::ConflictWaw, true);
    // Remote read vs local read: no dependence, no termination.
    runCase(false, BusOp::BusRd, ChunkReason::NumReasons, false);
}

TEST(RnrUnit, ConflictChecksUseLineGranularity)
{
    UnitRig rig;
    rig.unit.onRetire(0);
    rig.unit.onLoad(0x404, 0); // word within line 0x400
    BusTxn txn{BusOp::BusRdX, 0x43c, 1, 0}; // other word, same line
    rig.unit.observeRemote(txn, 0);
    EXPECT_EQ(rig.cbuf.occupancy(), 1u);
}

TEST(RnrUnit, LamportRules)
{
    UnitRig rig;
    // Terminated chunk gets the pre-increment clock; the clock then
    // strictly advances.
    rig.unit.onRetire(0);
    Timestamp before = rig.unit.clock();
    rig.unit.terminate(ChunkReason::Syscall, 0);
    auto recs = rig.cbuf.drain();
    EXPECT_EQ(recs[0].ts, before);
    EXPECT_EQ(rig.unit.clock(), before + 1);

    // Observing a remote transaction merges max(own, req)+1 ...
    BusTxn txn{BusOp::BusRd, 0x9000, 1, 100};
    Timestamp ret = rig.unit.observeRemote(txn, 0);
    EXPECT_EQ(rig.unit.clock(), 101u);
    EXPECT_EQ(ret, 101u);

    // ... conflict terminations log the PRE-merge clock, so the
    // conflicting chunk is ordered before the requester.
    rig.unit.onRetire(0);
    rig.unit.onLoad(0x500, 0);
    BusTxn confl{BusOp::BusRdX, 0x500, 1, 500};
    rig.unit.observeRemote(confl, 0);
    recs = rig.cbuf.drain();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].ts, 101u); // pre-merge
    EXPECT_EQ(rig.unit.clock(), 501u);

    // Response merge and clock floors.
    rig.unit.mergeResponse(1000);
    EXPECT_EQ(rig.unit.clock(), 1001u);
    rig.unit.setClockFloor(900); // floor below current: no effect
    EXPECT_EQ(rig.unit.clock(), 1001u);
    rig.unit.setClockFloor(2000);
    EXPECT_EQ(rig.unit.clock(), 2000u);
}

TEST(RnrUnit, RswCapturesStoreBufferOccupancy)
{
    UnitRig rig;
    rig.unit.onRetire(0);
    rig.sbOcc = 5;
    rig.unit.terminate(ChunkReason::SizeOverflow, 0);
    auto recs = rig.cbuf.drain();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].rsw, 5u);
    EXPECT_EQ(rig.unit.stats().rswNonZero, 1u);
}

TEST(RnrUnit, DisabledUnitStillMergesClocks)
{
    UnitRig rig;
    rig.unit.terminate(ChunkReason::Drain, 0);
    rig.unit.disable();
    BusTxn txn{BusOp::BusRdX, 0x500, 1, 42};
    rig.unit.observeRemote(txn, 0);
    EXPECT_EQ(rig.unit.clock(), 43u);
    EXPECT_EQ(rig.cbuf.occupancy(), 0u); // but no chunking
}

TEST(RnrUnit, ExactShadowCountsFalseConflicts)
{
    RnrParams p;
    p.bloom.bits = 64; // tiny filter: aliasing is likely
    p.exactShadow = true;
    UnitRig rig(p);
    Rng rng(11);
    std::set<Addr> touched;
    std::uint64_t realConflicts = 0;
    for (int i = 0; i < 2000; ++i) {
        rig.unit.onRetire(0);
        Addr a = (static_cast<Addr>(rng.next32()) & 0xffc0) | 0x10000;
        rig.unit.onLoad(a, 0);
        touched.insert(a & ~63u);
        Addr probe = (static_cast<Addr>(rng.next32()) & 0xffc0) |
                     0x20000;
        bool real = touched.count(probe & ~63u) > 0;
        BusTxn txn{BusOp::BusRdX, probe, 1, 0};
        std::uint32_t before = rig.cbuf.occupancy();
        rig.unit.observeRemote(txn, 0);
        if (rig.cbuf.occupancy() > before) {
            touched.clear();
            if (real)
                realConflicts++;
        }
    }
    // Probes target a disjoint address range, so every termination is
    // a Bloom false positive.
    EXPECT_EQ(realConflicts, 0u);
    EXPECT_GT(rig.unit.stats().falseConflicts, 0u);
}

TEST(RnrUnit, LineMaskKeepsHighAddressBits)
{
    // Regression: lineOf() used `addr & ~(params.lineBytes - 1)` with a
    // 32-bit uint32_t mask; if Addr is ever widened past 32 bits that
    // silently clears the upper address bits for addresses >= 4 GiB.
    // The mask is now widened to Addr before the complement. With the
    // current 32-bit Addr this pins the behavior at the very top of
    // the address space.
    UnitRig rig;
    rig.unit.onRetire(0);
    Addr high = ~static_cast<Addr>(0) - 0x3b; // 0x...ffc4: line 0x...ffc0
    rig.unit.onLoad(high, 0);
    // A remote write to another word of the same top-of-memory line
    // must hit the read filter and terminate the chunk.
    BusTxn txn{BusOp::BusRdX, high | 0x30, 1, 0};
    rig.unit.observeRemote(txn, 0);
    auto recs = rig.cbuf.drain();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].reason, ChunkReason::ConflictWar);
}

TEST(RnrUnit, CoalescingIsLogIdenticalToReferencePath)
{
    // Drive two units through the same access stream, one with the
    // last-line caches and one on the coalesce=false reference path;
    // every observable (fill, termination pattern, logged records)
    // must match. Repeated same-line runs make coalescing actually
    // fire; filterMaxFill makes fill() observable in the log.
    RnrParams fast;
    fast.filterMaxFill = 24;
    RnrParams ref = fast;
    ref.coalesce = false;
    UnitRig a(fast), b(ref);
    Rng rng(21);
    for (int i = 0; i < 4000; ++i) {
        Addr addr = (static_cast<Addr>(rng.below(8)) * 64 + 0x4000) |
                    (static_cast<Addr>(rng.next32()) & 0x3c);
        int burst = 1 + static_cast<int>(rng.below(4));
        for (int j = 0; j < burst; ++j) {
            a.unit.onRetire(0);
            b.unit.onRetire(0);
            if (rng.chance(1, 3)) {
                a.unit.onStoreDrain(addr, 0);
                b.unit.onStoreDrain(addr, 0);
            } else {
                a.unit.onLoad(addr, 0);
                b.unit.onLoad(addr, 0);
            }
        }
        if (rng.chance(1, 40)) {
            BusTxn txn{rng.chance(1, 2) ? BusOp::BusRd : BusOp::BusRdX,
                       static_cast<Addr>(rng.below(8)) * 64 + 0x4000, 1,
                       rng.below(50)};
            a.unit.observeRemote(txn, 0);
            b.unit.observeRemote(txn, 0);
        }
    }
    a.unit.terminate(ChunkReason::Drain, 0);
    b.unit.terminate(ChunkReason::Drain, 0);
    EXPECT_GT(a.unit.stats().coalescedLoads +
                  a.unit.stats().coalescedDrains, 0u);
    EXPECT_EQ(b.unit.stats().coalescedLoads, 0u);
    auto ra = a.cbuf.drain();
    auto rb = b.cbuf.drain();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i], rb[i]) << "record " << i;
    EXPECT_EQ(a.unit.stats().chunks, b.unit.stats().chunks);
    EXPECT_EQ(a.unit.clock(), b.unit.clock());
}

TEST(RnrUnit, CoalescingCacheResetsAtChunkBoundary)
{
    // After a termination the caches must not swallow the first access
    // to the previously-cached line: the new chunk needs its filter
    // bit back or the dependence would be lost.
    UnitRig rig;
    rig.unit.onRetire(0);
    rig.unit.onLoad(0x1000, 0);
    rig.unit.onLoad(0x1004, 0); // coalesced
    EXPECT_EQ(rig.unit.stats().coalescedLoads, 1u);
    rig.unit.terminate(ChunkReason::Syscall, 0);
    rig.unit.onRetire(0);
    rig.unit.onLoad(0x1008, 0); // same line, new chunk: must insert
    BusTxn txn{BusOp::BusRdX, 0x1000, 1, 0};
    rig.unit.observeRemote(txn, 0);
    auto recs = rig.cbuf.drain();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[1].reason, ChunkReason::ConflictWar);
}

TEST(RnrUnitDeath, DoubleEnablePanics)
{
    UnitRig rig;
    EXPECT_DEATH(rig.unit.enable(9), "already recording");
}

// --- CBUF backpressure under fault injection --------------------------------

/** A sink whose drain interrupts never arrive (software wedged). */
struct DeafSink : ChunkSink
{
    void
    onChunkLogged(const ChunkRecord &, CoreId,
                  const ChunkShadow *) override
    {
        logged++;
    }
    void onCbufSignal(CoreId, bool, Tick) override { signals++; }

    std::uint64_t logged = 0;
    std::uint64_t signals = 0;
};

TEST(RnrUnitFault, FullCbufDropsChunksBehindGapMarkers)
{
    // Tiny CBUF, every drain signal lost: the buffer must fill, raise
    // backpressure, and shed chunks into per-thread gap markers --
    // never overflow (the no-fault overflow stays a panic, see
    // CbufDeath.OverflowPanics).
    Memory mem(1 << 20);
    Cbuf cbuf(CbufParams{8, 0.75}, mem, 0, nullptr);
    RnrUnit unit(0, RnrParams{}, cbuf);
    struct : SbOccupancySource
    {
        std::uint32_t sbOccupancy() const override { return 0; }
    } sb;
    unit.setSbSource(&sb);
    DeafSink sink;
    unit.setSink(&sink);
    FaultPlan faults = FaultPlan::parse("cbuf-drop@1.0", 3);
    unit.setFaultPlan(&faults);
    unit.enable(7);

    const int emitted = 20;
    for (int i = 0; i < emitted; ++i) {
        unit.onRetire(0);
        unit.terminate(ChunkReason::Syscall, 0);
    }

    const RnrStats &rs = unit.stats();
    EXPECT_TRUE(cbuf.full());
    EXPECT_EQ(rs.chunks, 8u);                  // what fit in the ring
    EXPECT_EQ(rs.droppedChunks, 12u);          // what did not
    EXPECT_GT(rs.lostSignals, 0u);             // why nothing drained
    EXPECT_EQ(cbuf.stats().droppedRecords, rs.droppedChunks);
    EXPECT_EQ(sink.logged, rs.chunks); // drops never reach the sink

    // The drain stream ends with one gap marker for the thread whose
    // records were shed, sized to the loss and timestamp-monotonic.
    auto recs = cbuf.drain();
    ASSERT_EQ(recs.size(), 9u);
    std::uint64_t gapTotal = 0;
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NE(recs[i].reason, ChunkReason::Gap) << i;
    const ChunkRecord &gap = recs.back();
    EXPECT_EQ(gap.reason, ChunkReason::Gap);
    EXPECT_EQ(gap.tid, 7);
    EXPECT_EQ(gap.rsw, 0u);
    EXPECT_GT(gap.ts, recs[7].ts); // after the last logged chunk
    gapTotal += gap.size;
    EXPECT_EQ(gapTotal, rs.droppedChunks);
    EXPECT_EQ(cbuf.stats().gapRecords, 1u);

    // After the drain the unit records normally again.
    unit.onRetire(0);
    unit.terminate(ChunkReason::Syscall, 0);
    EXPECT_EQ(unit.stats().chunks, 9u);
    EXPECT_EQ(cbuf.occupancy(), 1u);
}

} // namespace
} // namespace qr
