/**
 * @file
 * Differential tests of the parallel chunk-graph replayer against the
 * sequential oracle: for randomized racy micro workloads, every job
 * count must produce bit-identical digests, identical injected-record
 * counts, and identical divergence behavior (a corrupt log must be
 * reported by both engines, never silently dropped by the parallel
 * one).
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "guest/runtime.hh"
#include "replay/chunk_graph.hh"
#include "sim/rng.hh"
#include "workloads/micro.hh"

namespace qr
{
namespace
{

/** Generate a random racy multithreaded program (loads, stores,
 *  atomics, lock sections, nondet instructions, syscalls). */
Program
randomRacyProgram(std::uint64_t seed, int threads, int ops)
{
    GuestBuilder g;
    Rng rng(seed);
    constexpr std::uint32_t sharedWords = 64; // dense conflicts
    Addr shared = g.alignedBlock(sharedWords);
    Addr lock = g.lockAlloc();
    Addr results =
        g.alignedBlock(16u * static_cast<std::uint32_t>(threads));

    auto sharedAddr = [&] {
        return shared + static_cast<Addr>(rng.below(sharedWords)) * 4;
    };

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.sysWrite(results, static_cast<Word>(threads) * 64);
    });

    g.label(body);
    g.mv(s0, a0);
    g.addi(s1, a0, 1);
    for (int i = 0; i < ops; ++i) {
        switch (rng.below(10)) {
          case 0:
            g.li(t1, rng.next32());
            g.add(s1, s1, t1);
            break;
          case 1: {
            g.li(t1, sharedAddr());
            g.lw(t2, t1, 0);
            g.xor_(s1, s1, t2);
            break;
          }
          case 2: {
            g.li(t1, sharedAddr());
            g.sw(s1, t1, 0);
            break;
          }
          case 3: {
            g.li(t1, sharedAddr());
            g.fetchadd(t2, t1, s1);
            g.add(s1, s1, t2);
            break;
          }
          case 4: {
            g.li(t1, sharedAddr());
            g.li(t2, rng.next32() & 0xff);
            g.cas(t2, t1, s1);
            g.add(s1, s1, t2);
            break;
          }
          case 5:
            g.fence();
            break;
          case 6: {
            g.li(s3, lock);
            g.spinLockAcquire(s3, t1, t4);
            g.li(t1, sharedAddr());
            g.lw(t2, t1, 0);
            g.add(t2, t2, s1);
            g.sw(t2, t1, 0);
            g.spinLockRelease(s3, t1);
            break;
          }
          case 7: {
            switch (rng.below(3)) {
              case 0: g.rdtsc(t2); break;
              case 1: g.rdrand(t2); break;
              default: g.cpuid(t2); break;
            }
            g.add(s1, s1, t2);
            break;
          }
          case 8: {
            switch (rng.below(3)) {
              case 0: g.sys(Sys::Time); break;
              case 1: g.sys(Sys::Random); break;
              default: g.sys(Sys::GetTid); break;
            }
            g.add(s1, s1, a0);
            break;
          }
          case 9: {
            g.li(t1, sharedAddr());
            g.mv(t2, s1);
            g.swap(t2, t1);
            g.xor_(s1, s1, t2);
            break;
          }
        }
    }
    g.slli(t1, s0, 6);
    g.li(t2, results);
    g.add(t2, t2, t1);
    g.sw(s1, t2, 0);
    g.ret();
    return g.finish();
}

/** Assert the parallel result at @p jobs matches the sequential
 *  oracle in every observable way. */
void
expectIdentical(const ReplayResult &seq, const SphereLogs &logs,
                const Program &prog, int jobs, const char *what)
{
    ParallelReplayResult par = replaySphereParallel(prog, logs, jobs);
    ASSERT_EQ(par.replay.ok, seq.ok)
        << what << " jobs=" << jobs << ": " << par.replay.divergence;
    EXPECT_EQ(par.replay.digests, seq.digests) << what << " jobs=" << jobs;
    EXPECT_EQ(par.replay.injectedRecords, seq.injectedRecords)
        << what << " jobs=" << jobs;
    EXPECT_EQ(par.replay.replayedInstrs, seq.replayedInstrs)
        << what << " jobs=" << jobs;
    EXPECT_EQ(par.replay.replayedChunks, seq.replayedChunks)
        << what << " jobs=" << jobs;
    EXPECT_EQ(par.replay.modeledCycles, seq.modeledCycles)
        << what << " jobs=" << jobs;
    EXPECT_EQ(par.graphNodes, seq.replayedChunks) << what;
}

class RandomizedDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomizedDifferential, ParallelMatchesSequentialAcrossJobs)
{
    std::uint64_t seed = GetParam();
    int threads = 2 + static_cast<int>(seed % 3);
    Program prog =
        randomRacyProgram(seed * 0x9e3779b9ull + 7, threads, 120);

    MachineConfig mcfg;
    mcfg.memBytes = 8u << 20;
    mcfg.numCores = 4;
    RecordResult rec = recordProgram(prog, mcfg);

    ReplayResult seq = replaySphere(prog, rec.logs);
    ASSERT_TRUE(seq.ok) << "seed=" << seed << ": " << seq.divergence;
    ASSERT_TRUE(verifyDigests(rec.metrics.digests, seq.digests).ok);

    for (int jobs : {1, 2, 4, 8})
        expectIdentical(seq, rec.logs, prog, jobs, "random");
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedDifferential,
                         ::testing::Values(11ull, 12ull, 13ull, 14ull,
                                           15ull, 16ull, 17ull, 18ull));

TEST(ParallelReplay, MicroWorkloadsMatchAcrossJobs)
{
    struct Case
    {
        const char *name;
        Workload w;
    };
    Case cases[] = {
        {"counter-racy", makeRacyCounter(4, 400, false)},
        {"counter-locked", makeRacyCounter(4, 300, true)},
        {"false-sharing", makeFalseSharing(4, 300)},
        {"prodcons", makeProdCons(4, 60)},
        {"nondet-mix", makeNondetMix(2, 80)},
        {"signal-stress", makeSignalStress(8)},
    };
    for (const Case &c : cases) {
        RecordResult rec = recordProgram(c.w.program);
        ReplayResult seq = replaySphere(c.w.program, rec.logs);
        ASSERT_TRUE(seq.ok) << c.name << ": " << seq.divergence;
        for (int jobs : {1, 2, 4, 8})
            expectIdentical(seq, rec.logs, c.w.program, jobs, c.name);
    }
}

TEST(ParallelReplay, ParallelReplayIsIdempotent)
{
    Workload w = makeRacyCounter(4, 500, false);
    RecordResult rec = recordProgram(w.program);
    ParallelReplayResult a = replaySphereParallel(w.program, rec.logs, 4);
    ParallelReplayResult b = replaySphereParallel(w.program, rec.logs, 4);
    ASSERT_TRUE(a.replay.ok && b.replay.ok);
    EXPECT_EQ(a.replay.digests, b.replay.digests);
    EXPECT_EQ(a.speed.modeledParallelCycles,
              b.speed.modeledParallelCycles);
}

TEST(ParallelReplay, ModeledSpeedBoundsHold)
{
    Workload w = makeFalseSharing(4, 400);
    RecordResult rec = recordProgram(w.program);
    ParallelReplayResult par =
        replaySphereParallel(w.program, rec.logs, 4);
    ASSERT_TRUE(par.replay.ok) << par.replay.divergence;
    const ReplaySpeed &s = par.speed;
    EXPECT_EQ(s.modeledSequentialCycles, par.replay.modeledCycles);
    EXPECT_LE(s.modeledParallelCycles, s.modeledSequentialCycles);
    EXPECT_GE(s.modeledParallelCycles, s.criticalPathCycles);
    EXPECT_GE(s.modeledParallelCycles,
              s.modeledSequentialCycles / 4);
    // More workers never model slower.
    ParallelReplayResult one =
        replaySphereParallel(w.program, rec.logs, 1);
    EXPECT_GE(one.speed.modeledParallelCycles,
              s.modeledParallelCycles);
    EXPECT_EQ(one.speed.modeledParallelCycles,
              one.speed.modeledSequentialCycles);
}

TEST(ParallelReplay, CorruptLogDivergesIdenticallyToSequential)
{
    Workload w = makeRacyCounter(4, 300, false);
    RecordResult rec = recordProgram(w.program);

    // Corrupt an input record: both engines must report a divergence,
    // with the same message (the graph's analysis pass IS the
    // sequential replay, so nothing is ever silently dropped).
    SphereLogs corrupt = rec.logs;
    bool mutated = false;
    for (auto &[tid, t] : corrupt.threads) {
        for (auto &in : t.input)
            if (in.kind == InputKind::SyscallRet) {
                in.num += 1;
                mutated = true;
                break;
            }
        if (mutated)
            break;
    }
    ASSERT_TRUE(mutated);

    ReplayResult seq = replaySphere(w.program, corrupt);
    ASSERT_FALSE(seq.ok);
    for (int jobs : {1, 2, 4}) {
        ParallelReplayResult par =
            replaySphereParallel(w.program, corrupt, jobs);
        ASSERT_FALSE(par.replay.ok) << "jobs=" << jobs;
        EXPECT_EQ(par.replay.divergence, seq.divergence)
            << "jobs=" << jobs;
    }

    // An impossible RSW hits the same path.
    SphereLogs badRsw = rec.logs;
    for (auto &[tid, t] : badRsw.threads) {
        if (!t.chunks.empty()) {
            t.chunks[0].rsw = 60000;
            break;
        }
    }
    ReplayResult seq2 = replaySphere(w.program, badRsw);
    ASSERT_FALSE(seq2.ok);
    ParallelReplayResult par2 =
        replaySphereParallel(w.program, badRsw, 4);
    ASSERT_FALSE(par2.replay.ok);
    EXPECT_EQ(par2.replay.divergence, seq2.divergence);
}

TEST(ParallelReplay, JobsBeyondChunkCountStillWork)
{
    Workload w = makeNondetMix(2, 20);
    RecordResult rec = recordProgram(w.program);
    ReplayResult seq = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(seq.ok);
    ParallelReplayResult par =
        replaySphereParallel(w.program, rec.logs, 64);
    ASSERT_TRUE(par.replay.ok) << par.replay.divergence;
    EXPECT_EQ(par.replay.digests, seq.digests);
}

} // namespace
} // namespace qr
