/**
 * @file
 * Tests for the qrecd record service: the admission-control ladder
 * (pure policy), the closed submission ledger (every sphere ends in
 * exactly one bucket and service.unaccounted stays 0), degraded
 * admission under the byte budget, graceful shutdown interrupting
 * in-flight recordings into sealed degraded-replayable prefixes,
 * chaos runs keeping the ledger closed, restart-time repair of a torn
 * store, and the loopback /metrics endpoint.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/artifact.hh"
#include "core/session.hh"
#include "service/admission.hh"
#include "service/http_metrics.hh"
#include "service/service.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace
{

using namespace qr;

/** Fresh scratch directory under /tmp, wiped on construction. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const std::string &name)
        : path("/tmp/qr_svc_" + name)
    {
        wipe();
    }

    ~ScratchDir() { wipe(); }

    void wipe()
    {
        DIR *d = ::opendir(path.c_str());
        if (d) {
            while (struct dirent *e = ::readdir(d)) {
                std::string n = e->d_name;
                if (n != "." && n != "..")
                    ::unlink((path + "/" + n).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(path.c_str());
    }
};

SphereRequest
smallRequest(int iters = 60)
{
    Workload w = makeRacyCounter(2, iters, false);
    SphereRequest req;
    req.workload = w.name;
    req.threads = 2;
    req.scale = 1;
    req.program = w.program;
    return req;
}

/** Sum of every terminal ledger bucket. */
std::uint64_t
terminal(const ServiceCounters &c)
{
    return c.shedQueueFull + c.shedByteBudget + c.shedShutdown +
           c.saved + c.saveTornLeft + c.saveLost + c.aborted;
}

// --- Admission ladder (pure policy, no threads) -------------------------

TEST(Admission, AdmitsInsideEveryBudget)
{
    AdmissionBudgets b;
    AdmissionController ctl(b);
    EXPECT_EQ(ctl.decide({}), AdmissionOutcome::Admit);
    EXPECT_EQ(ctl.decide({3, 10, 0, false}), AdmissionOutcome::Admit);
}

TEST(Admission, ShutdownShedsFirst)
{
    AdmissionBudgets b;
    b.retainedByteBudget = 1;
    AdmissionController ctl(b);
    // Shutdown outranks every other reason on the ladder.
    AdmissionState s{1000, 1000, 1000000, true};
    EXPECT_EQ(ctl.decide(s), AdmissionOutcome::RejectShutdown);
}

TEST(Admission, QueueBudgetCountsActivePlusQueued)
{
    AdmissionBudgets b;
    b.maxActive = 2;
    b.maxQueued = 3;
    AdmissionController ctl(b);
    EXPECT_EQ(ctl.decide({2, 2, 0, false}), AdmissionOutcome::Admit);
    EXPECT_EQ(ctl.decide({2, 3, 0, false}),
              AdmissionOutcome::RejectQueueFull);
    EXPECT_EQ(ctl.decide({5, 0, 0, false}),
              AdmissionOutcome::RejectQueueFull);
}

TEST(Admission, SoftByteBudgetDegrades)
{
    AdmissionBudgets b;
    b.retainedByteBudget = 1000;
    b.hardByteFactor = 4;
    AdmissionController ctl(b);
    EXPECT_EQ(ctl.decide({0, 0, 999, false}), AdmissionOutcome::Admit);
    EXPECT_EQ(ctl.decide({0, 0, 1000, false}),
              AdmissionOutcome::AdmitDegraded);
    EXPECT_EQ(ctl.decide({0, 0, 3999, false}),
              AdmissionOutcome::AdmitDegraded);
}

TEST(Admission, HardByteCeilingRejects)
{
    AdmissionBudgets b;
    b.retainedByteBudget = 1000;
    b.hardByteFactor = 4;
    AdmissionController ctl(b);
    EXPECT_EQ(ctl.decide({0, 0, 4000, false}),
              AdmissionOutcome::RejectByteBudget);
}

TEST(Admission, ZeroByteBudgetIsUnlimited)
{
    AdmissionBudgets b;
    b.retainedByteBudget = 0;
    AdmissionController ctl(b);
    EXPECT_EQ(ctl.decide({0, 0, ~0ull >> 1, false}),
              AdmissionOutcome::Admit);
}

TEST(Admission, OutcomeNamesAndRejectedPredicate)
{
    EXPECT_STREQ(admissionOutcomeName(AdmissionOutcome::Admit),
                 "admit");
    EXPECT_STREQ(admissionOutcomeName(AdmissionOutcome::AdmitDegraded),
                 "admit-degraded");
    EXPECT_STREQ(
        admissionOutcomeName(AdmissionOutcome::RejectQueueFull),
        "reject-queue-full");
    EXPECT_STREQ(
        admissionOutcomeName(AdmissionOutcome::RejectByteBudget),
        "reject-byte-budget");
    EXPECT_STREQ(
        admissionOutcomeName(AdmissionOutcome::RejectShutdown),
        "reject-shutdown");
    EXPECT_FALSE(admissionRejected(AdmissionOutcome::Admit));
    EXPECT_FALSE(admissionRejected(AdmissionOutcome::AdmitDegraded));
    EXPECT_TRUE(admissionRejected(AdmissionOutcome::RejectQueueFull));
    EXPECT_TRUE(admissionRejected(AdmissionOutcome::RejectShutdown));
}

// --- End-to-end service runs --------------------------------------------

TEST(Service, RecordsEverySubmissionAndClosesLedger)
{
    ScratchDir dir("ledger");
    ServiceConfig cfg;
    cfg.dir = dir.path;
    cfg.workers = 2;
    RecordService svc(cfg);
    svc.start();

    const int n = 6;
    for (int i = 0; i < n; ++i) {
        SubmitResult r = svc.submit(smallRequest());
        EXPECT_TRUE(r.admitted());
        EXPECT_GT(r.sphereId, 0u);
    }
    svc.waitIdle();
    svc.shutdown();

    ServiceCounters c = svc.counters();
    EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(n));
    EXPECT_EQ(c.saved, static_cast<std::uint64_t>(n));
    EXPECT_EQ(c.recorded, static_cast<std::uint64_t>(n));
    EXPECT_EQ(terminal(c), c.submitted); // the ledger closes
    EXPECT_EQ(svc.store().retainedCount(), static_cast<std::uint64_t>(n));

    // Every retained artifact loads clean.
    StoreScan scan = svc.store().scan();
    EXPECT_EQ(scan.sealed.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(scan.unsealed.empty());
    EXPECT_TRUE(scan.temps.empty());
    for (const ArtifactFile &f : scan.sealed)
        EXPECT_TRUE(loadArtifact(f.path).ok) << f.path;

    // The exported gauge agrees: nothing is unaccounted.
    std::string prom = svc.snapshot().prometheus();
    EXPECT_NE(prom.find("qr_service_unaccounted 0"), std::string::npos)
        << prom;
}

TEST(Service, ByteBudgetBreachAdmitsDegraded)
{
    ScratchDir dir("degraded");
    ServiceConfig cfg;
    cfg.dir = dir.path;
    cfg.workers = 1;
    cfg.budgets.retainedByteBudget = 1; // any retained byte breaches
    cfg.budgets.hardByteFactor = 1u << 20; // keep the hard ceiling away
    RecordService svc(cfg);
    svc.start();

    EXPECT_EQ(svc.submit(smallRequest()).outcome,
              AdmissionOutcome::Admit);
    svc.waitIdle();
    ASSERT_GT(svc.store().retainedBytes(), 0u);

    SubmitResult r = svc.submit(smallRequest());
    EXPECT_EQ(r.outcome, AdmissionOutcome::AdmitDegraded);
    svc.waitIdle();
    svc.shutdown();

    ServiceCounters c = svc.counters();
    EXPECT_EQ(c.admitted, 1u);
    EXPECT_EQ(c.admittedDegraded, 1u);
    EXPECT_EQ(c.saved, 2u);
    EXPECT_EQ(terminal(c), c.submitted);
    for (const ArtifactFile &f : svc.store().scan().sealed)
        EXPECT_TRUE(loadArtifact(f.path).ok) << f.path;
}

TEST(Service, ShutdownSealsInterruptedPrefix)
{
    ScratchDir dir("interrupt");
    ServiceConfig cfg;
    cfg.dir = dir.path;
    cfg.workers = 1;
    cfg.drainDeadlineMs = 1; // interrupt almost immediately
    RecordService svc(cfg);
    svc.start();

    // Big enough that the recording is still running when the drain
    // deadline (1 ms) passes.
    Workload w = makeRacyCounter(4, 200000, false);
    SphereRequest req;
    req.workload = w.name;
    req.threads = 4;
    req.scale = 1;
    req.program = w.program;
    ASSERT_TRUE(svc.submit(std::move(req)).admitted());

    // Let the worker pick the job up, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    svc.shutdown();

    ServiceCounters c = svc.counters();
    EXPECT_EQ(c.recorded, 1u);
    EXPECT_EQ(c.interrupted, 1u);
    EXPECT_EQ(c.saved, 1u);
    EXPECT_EQ(terminal(c), c.submitted);

    // The interrupted prefix is sealed on disk and replays degraded.
    StoreScan scan = svc.store().scan();
    ASSERT_EQ(scan.sealed.size(), 1u);
    ArtifactLoadResult art = loadArtifact(scan.sealed[0].path);
    ASSERT_TRUE(art.ok) << art.detail;
    ReplayResult rep =
        replaySphere(w.program, art.artifact.logs, ReplayMode::Degraded);
    EXPECT_TRUE(rep.ok) << rep.divergence;
}

TEST(Service, ChaosRunKeepsLedgerClosedAndStoreSealed)
{
    ScratchDir dir("chaos");
    ServiceConfig cfg;
    cfg.dir = dir.path;
    cfg.workers = 2;
    cfg.faultSpec =
        "io-torn@0.2,io-enospc@0.1,io-short@0.1,drain-fail@0.1,"
        "cbuf-drop@0.05";
    cfg.faultSeed = 1234;
    cfg.saveRetries = 3;
    cfg.repairIntervalMs = 20;
    RecordService svc(cfg);
    svc.start();

    const int n = 16;
    for (int i = 0; i < n; ++i)
        svc.submit(smallRequest());
    svc.waitIdle();
    svc.shutdown();

    ServiceCounters c = svc.counters();
    EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(n));
    EXPECT_EQ(terminal(c), c.submitted); // chaos can't open the ledger
    // The fault rates above make retries statistically certain over
    // 16 spheres x 4 attempts; a regression that stops retrying (or
    // stops injecting) shows up here.
    EXPECT_GT(c.saveAttempts, c.saved);

    // After the final repair sweep nothing un-sealed survives under
    // the .qrec namespace: every file either verifies clean or was
    // quarantined visibly.
    StoreScan scan = svc.store().scan();
    EXPECT_TRUE(scan.unsealed.empty());
    EXPECT_TRUE(scan.temps.empty());
    for (const ArtifactFile &f : scan.sealed)
        EXPECT_TRUE(loadArtifact(f.path).ok) << f.path;

    std::string prom = svc.snapshot().prometheus();
    EXPECT_NE(prom.find("qr_service_unaccounted 0"), std::string::npos)
        << prom;
}

TEST(Service, StartRepairsTornStoreFromPreviousLife)
{
    ScratchDir dir("restart");
    // Fabricate the aftermath of a SIGKILL: one torn artifact (torn
    // mid-write by an injected fault) plus a leftover temp file.
    {
        Workload w = makeRacyCounter(2, 60, false);
        RecordResult rec = recordProgram(w.program);
        SphereArtifact art{w.name, 2, 1, rec.metrics.digests,
                           std::move(rec.logs), {}};
        // Fatten with an (opaque) trace section so the container
        // spans several segments and a tail tear leaves a prefix.
        art.trace.assign(4096, 0x55);
        ::mkdir(dir.path.c_str(), 0755);
        // Seal, then tear the tail off: a deterministic mid-write
        // crash with the header segment intact, so repair can salvage.
        std::string torn = dir.path + "/sphere-000001-counter-racy.qrec";
        ASSERT_TRUE(saveArtifact(art, torn).ok);
        struct stat st;
        ASSERT_EQ(::stat(torn.c_str(), &st), 0);
        ASSERT_GT(st.st_size, 1800);
        ASSERT_EQ(::truncate(torn.c_str(), st.st_size - 700), 0);
        FILE *f = std::fopen(
            (dir.path + "/sphere-000002-x.qrec.tmp").c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("partial", f);
        std::fclose(f);
    }

    ServiceConfig cfg;
    cfg.dir = dir.path;
    RecordService svc(cfg);
    svc.start(); // rescan + repair sweep run before any worker

    ServiceCounters c = svc.counters();
    EXPECT_EQ(c.repairRecovered, 1u);
    EXPECT_EQ(c.repairTempsRemoved, 1u);
    EXPECT_EQ(c.repairUnrecoverable, 0u);
    EXPECT_EQ(svc.store().retainedCount(), 1u);

    StoreScan scan = svc.store().scan();
    ASSERT_EQ(scan.sealed.size(), 1u);
    EXPECT_TRUE(scan.unsealed.empty());
    EXPECT_TRUE(scan.temps.empty());
    ArtifactLoadResult art = loadArtifact(scan.sealed[0].path);
    EXPECT_TRUE(art.ok) << art.detail;
    svc.shutdown();
}

TEST(Service, MetricsEndpointServesPrometheusText)
{
    ScratchDir dir("metrics");
    ServiceConfig cfg;
    cfg.dir = dir.path;
    cfg.metricsPort = 0; // ephemeral
    RecordService svc(cfg);
    svc.start();
    ASSERT_GT(svc.metricsPort(), 0);

    std::string err;
    std::string body = httpGetLocal(svc.metricsPort(), "/metrics", err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_NE(body.find("qr_service_submitted"), std::string::npos);
    EXPECT_NE(body.find("qr_service_unaccounted"), std::string::npos);

    std::string health = httpGetLocal(svc.metricsPort(), "/healthz", err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_NE(health.find("ok"), std::string::npos);

    httpGetLocal(svc.metricsPort(), "/nope", err);
    EXPECT_FALSE(err.empty()); // 404 surfaces as an error

    int port = svc.metricsPort();
    svc.shutdown();
    httpGetLocal(port, "/metrics", err);
    EXPECT_FALSE(err.empty()); // endpoint is down after shutdown
}

TEST(Service, ShutdownIsIdempotentAndShedsLateSubmissions)
{
    ScratchDir dir("idem");
    ServiceConfig cfg;
    cfg.dir = dir.path;
    RecordService svc(cfg);
    svc.start();
    svc.submit(smallRequest());
    svc.waitIdle();
    svc.shutdown();
    svc.shutdown(); // must be a no-op, not a double-join

    SubmitResult r = svc.submit(smallRequest());
    EXPECT_EQ(r.outcome, AdmissionOutcome::RejectShutdown);
    ServiceCounters c = svc.counters();
    EXPECT_EQ(c.shedShutdown, 1u);
    EXPECT_EQ(terminal(c), c.submitted);
}

} // namespace
