/**
 * @file
 * End-to-end test of the qrec command-line driver: record a workload
 * to a container file, replay it from the file (self-validating
 * digests), and inspect it. Exercises the tool exactly as a user
 * would, via its argv interface.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace
{

std::string
qrecPath()
{
    // Tests run from anywhere; the binary sits next to the test tree.
    const char *env = std::getenv("QREC_BIN");
    return env ? env : "./tools/qrec";
}

int
runQrec(const std::string &args)
{
    std::string cmd = qrecPath() + " " + args + " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    return rc;
}

bool
qrecAvailable()
{
    return runQrec("list") == 0;
}

TEST(QrecCli, RecordReplayInspectRoundTrip)
{
    if (!qrecAvailable())
        GTEST_SKIP() << "qrec binary not found at " << qrecPath();
    const char *file = "/tmp/qr_cli_test.qrec";
    ASSERT_EQ(runQrec(std::string("record counter-racy -t 4 -s 1 -o ") +
                      file),
              0);
    EXPECT_EQ(runQrec(std::string("replay -i ") + file), 0);
    EXPECT_EQ(runQrec(std::string("inspect -i ") + file), 0);
    std::remove(file);
}

TEST(QrecCli, RunAndStats)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    EXPECT_EQ(runQrec("run fft -t 4 -s 1 --record --stats"), 0);
    EXPECT_EQ(runQrec("run water-sp"), 0);
}

TEST(QrecCli, RejectsUnknownWorkloadAndBadFile)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    EXPECT_NE(runQrec("run no-such-workload"), 0);
    EXPECT_NE(runQrec("replay -i /tmp/does_not_exist.qrec"), 0);
    EXPECT_NE(runQrec(""), 0);
}

} // namespace
