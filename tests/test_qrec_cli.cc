/**
 * @file
 * End-to-end test of the qrec command-line driver: record a workload
 * to a container file, replay it from the file (self-validating
 * digests), and inspect it. Exercises the tool exactly as a user
 * would, via its argv interface.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace
{

std::string
qrecPath()
{
    // Tests run from anywhere; the binary sits next to the test tree.
    const char *env = std::getenv("QREC_BIN");
    return env ? env : "./tools/qrec";
}

int
runQrec(const std::string &args)
{
    std::string cmd = qrecPath() + " " + args + " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    return rc;
}

/** Run qrec and capture combined stdout+stderr. */
int
runQrecCapture(const std::string &args, std::string &out)
{
    std::string cmd = qrecPath() + " " + args + " 2>&1";
    out.clear();
    std::FILE *p = popen(cmd.c_str(), "r");
    if (!p)
        return -1;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        out.append(buf, n);
    return pclose(p);
}

bool
qrecAvailable()
{
    return runQrec("list") == 0;
}

/** Slurp a file; empty string if it cannot be opened. */
std::string
readFileText(const char *path)
{
    std::string text;
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

TEST(QrecCli, RecordReplayInspectRoundTrip)
{
    if (!qrecAvailable())
        GTEST_SKIP() << "qrec binary not found at " << qrecPath();
    const char *file = "/tmp/qr_cli_test.qrec";
    ASSERT_EQ(runQrec(std::string("record counter-racy -t 4 -s 1 -o ") +
                      file),
              0);
    EXPECT_EQ(runQrec(std::string("replay -i ") + file), 0);
    EXPECT_EQ(runQrec(std::string("inspect -i ") + file), 0);
    std::remove(file);
}

TEST(QrecCli, RunAndStats)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    EXPECT_EQ(runQrec("run fft -t 4 -s 1 --record --stats"), 0);
    EXPECT_EQ(runQrec("run water-sp"), 0);
}

TEST(QrecCli, RejectsUnknownWorkloadAndBadFile)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    EXPECT_NE(runQrec("run no-such-workload"), 0);
    EXPECT_NE(runQrec("replay -i /tmp/does_not_exist.qrec"), 0);
    EXPECT_NE(runQrec(""), 0);
}

TEST(QrecCli, ParallelReplayReportsSpeed)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_par_test.qrec";
    ASSERT_EQ(runQrec(std::string("record counter-racy -t 4 -s 1 -o ") +
                      file),
              0);
    std::string out;
    ASSERT_EQ(runQrecCapture(std::string("replay -i ") + file +
                                 " --replay-jobs 4",
                             out),
              0)
        << out;
    EXPECT_NE(out.find("parallel replay: jobs=4 identical"),
              std::string::npos) << out;
    EXPECT_NE(out.find("replay-speed:"), std::string::npos) << out;
    EXPECT_NE(out.find("jobs=4"), std::string::npos) << out;
    EXPECT_NE(out.find("modeled-speedup="), std::string::npos) << out;
    EXPECT_NE(out.find("critical-path="), std::string::npos) << out;

    // The short spelling behaves identically.
    std::string outShort;
    ASSERT_EQ(runQrecCapture(std::string("replay -i ") + file + " -j 2",
                             outShort),
              0)
        << outShort;
    EXPECT_NE(outShort.find("jobs=2"), std::string::npos) << outShort;
    std::remove(file);
}

TEST(QrecCli, ParallelReplayReportsMeasuredWallClock)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_wall_test.qrec";
    ASSERT_EQ(runQrec(std::string("record counter-racy -t 4 -s 2 -o ") +
                      file),
              0);
    std::string out;
    ASSERT_EQ(runQrecCapture(std::string("replay -i ") + file +
                                 " --replay-jobs 4",
                             out),
              0)
        << out;
    // With a sequential oracle run in the same invocation, the speed
    // line reports real wall clock next to the model: the sequential
    // baseline and the measured ratio. (No assertion on the ratio's
    // magnitude -- a single-core host cannot beat 1.0.)
    EXPECT_NE(out.find("wall="), std::string::npos) << out;
    EXPECT_NE(out.find("seq-wall="), std::string::npos) << out;
    EXPECT_NE(out.find("measured-speedup="), std::string::npos) << out;
    EXPECT_NE(out.find("modeled-speedup="), std::string::npos) << out;
    std::remove(file);
}

TEST(QrecCli, StatsReplayJobsExportsBothSpeedups)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_stats_replay_test.qrec";
    ASSERT_EQ(runQrec(std::string("record counter-racy -t 4 -s 1 -o ") +
                      file),
              0);
    std::string json;
    ASSERT_EQ(runQrecCapture(std::string("stats -i ") + file +
                                 " --replay-jobs 4",
                             json),
              0)
        << json;
    EXPECT_NE(json.find("\"replay.jobs\": 4"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"replay.modeled_speedup\":"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"replay.measured_speedup\":"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"replay.seq_exec_micros\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"replay.exec_micros\":"), std::string::npos);
    // Without the flag the gauges must not appear: replaying is an
    // opt-in cost for a stats dump.
    std::string plain;
    ASSERT_EQ(runQrecCapture(std::string("stats -i ") + file, plain),
              0);
    EXPECT_EQ(plain.find("\"replay.measured_speedup\":"),
              std::string::npos)
        << plain;
    std::remove(file);
}

TEST(QrecCli, RejectsBadReplayJobs)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_badjobs_test.qrec";
    ASSERT_EQ(runQrec(std::string("record counter-racy -t 2 -s 1 -o ") +
                      file),
              0);
    for (const char *bad : {"0", "-3", "garbage", "2x", ""}) {
        std::string out;
        int rc = runQrecCapture(std::string("replay -i ") + file +
                                    " --replay-jobs \"" + bad + "\"",
                                out);
        EXPECT_NE(rc, 0) << "--replay-jobs '" << bad
                         << "' was accepted:\n" << out;
        EXPECT_NE(out.find("replay-jobs"), std::string::npos) << out;
    }
    // A flag with no value at all is rejected, not read out of bounds.
    EXPECT_NE(runQrec(std::string("replay -i ") + file +
                      " --replay-jobs"),
              0);
    std::remove(file);
}

TEST(QrecCli, AnalyzeFlagsRacyTwinAndClearsCleanTwin)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *racy = "/tmp/qr_cli_analyze_racy.qrec";
    const char *clean = "/tmp/qr_cli_analyze_clean.qrec";
    ASSERT_EQ(runQrec(std::string("record race-demo-racy -t 4 "
                                  "--exact-shadow -o ") + racy),
              0);
    ASSERT_EQ(runQrec(std::string("record race-demo-clean -t 4 "
                                  "--exact-shadow -o ") + clean),
              0);

    // Racy twin: nonzero exit (races found), planted line reported.
    std::string out;
    EXPECT_NE(runQrecCapture(std::string("analyze -i ") + racy, out),
              0);
    EXPECT_NE(out.find("racy lines:"), std::string::npos) << out;
    EXPECT_NE(out.find("exact shadow sets: yes"), std::string::npos)
        << out;

    // Clean twin: exit 0, zero races.
    std::string cout_;
    EXPECT_EQ(runQrecCapture(std::string("analyze -i ") + clean, cout_),
              0);
    EXPECT_NE(cout_.find("races: 0"), std::string::npos) << cout_;

    std::remove(racy);
    std::remove(clean);
}

TEST(QrecCli, AnalyzeEmitsParseableJson)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_analyze_json.qrec";
    const char *json = "/tmp/qr_cli_analyze_out.json";
    ASSERT_EQ(runQrec(std::string("record race-demo-clean -t 2 "
                                  "--exact-shadow -o ") + file),
              0);
    EXPECT_EQ(runQrec(std::string("analyze -i ") + file + " --json " +
                      json),
              0);
    // Sanity-check the emitted document without linking the library:
    // key fields must be present in the text.
    std::string text;
    {
        std::FILE *f = std::fopen(json, "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    EXPECT_NE(text.find("\"bench\": \"ANALYZE\""), std::string::npos)
        << text;
    EXPECT_NE(text.find("false_conflict_rate"), std::string::npos);
    // Schema-2 stats section: streaming-analyzer resource accounting.
    EXPECT_NE(text.find("\"schema\": 2"), std::string::npos) << text;
    EXPECT_NE(text.find("analyze.peak_resident_bytes"),
              std::string::npos) << text;
    EXPECT_NE(text.find("analyze.fixpoint_capped"), std::string::npos)
        << text;
    std::remove(file);
    std::remove(json);
}

TEST(QrecCli, AnalyzeWindowFlagAndEnvKnob)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_analyze_window.qrec";
    ASSERT_EQ(runQrec(std::string("record race-demo-clean -t 2 "
                                  "--exact-shadow -o ") + file),
              0);

    // The window is a pure memory knob: any value, same report.
    std::string base, w1;
    EXPECT_EQ(runQrecCapture(std::string("analyze -i ") + file, base),
              0);
    EXPECT_EQ(runQrecCapture(std::string("analyze -i ") + file +
                                 " --window 1",
                             w1),
              0);
    EXPECT_EQ(base, w1);

    // The env knob is inherited through popen's shell.
    setenv("QR_ANALYZE_WINDOW", "3", 1);
    std::string env;
    EXPECT_EQ(runQrecCapture(std::string("analyze -i ") + file, env),
              0);
    unsetenv("QR_ANALYZE_WINDOW");
    EXPECT_EQ(base, env);

    // Malformed values are rejected with the usual flag diagnostics.
    for (const char *bad : {"0", "-2", "junk", ""}) {
        std::string out;
        int rc = runQrecCapture(std::string("analyze -i ") + file +
                                    " --window \"" + bad + "\"",
                                out);
        EXPECT_NE(rc, 0) << "--window '" << bad << "' was accepted:\n"
                         << out;
        EXPECT_NE(out.find("window"), std::string::npos) << out;
    }
    std::remove(file);
}

TEST(QrecCli, AnalyzeWorksWithoutExactShadows)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_analyze_deg.qrec";
    ASSERT_EQ(runQrec(std::string("record race-demo-racy -t 4 -o ") +
                      file),
              0);
    std::string out;
    runQrecCapture(std::string("analyze -i ") + file, out);
    EXPECT_NE(out.find("exact shadow sets: no"), std::string::npos)
        << out;
    EXPECT_NE(out.find("precision: n/a"), std::string::npos) << out;
    std::remove(file);
}

TEST(QrecCli, TraceExportsChromeJson)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_trace_test.qrec";
    const char *json = "/tmp/qr_cli_trace_test.json";
    std::string out;
    ASSERT_EQ(runQrecCapture(std::string("record fft -t 4 -s 1 "
                                         "--trace -o ") + file,
                             out),
              0)
        << out;
    EXPECT_NE(out.find("traced "), std::string::npos) << out;

    // A traced container still replays: the trace section rides after
    // the sphere and never perturbs it.
    EXPECT_EQ(runQrec(std::string("replay -i ") + file), 0);

    std::string info;
    ASSERT_EQ(runQrecCapture(std::string("trace -i ") + file + " -o " +
                                 json,
                             info),
              0)
        << info;
    EXPECT_NE(info.find("recorded timeline"), std::string::npos)
        << info;
    std::string text = readFileText(json);
    EXPECT_NE(text.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(text.find("\"process_name\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    std::remove(file);
    std::remove(json);
}

TEST(QrecCli, TraceSynthesizesTimelineForUntracedContainers)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_trace_synth.qrec";
    ASSERT_EQ(runQrec(std::string("record lu -t 4 -s 1 -o ") + file),
              0);
    std::string out;
    ASSERT_EQ(runQrecCapture(std::string("trace -i ") + file, out), 0)
        << out;
    EXPECT_NE(out.find("synthesized from chunk records"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"chunk\""), std::string::npos);
    std::remove(file);
}

TEST(QrecCli, StatsExportsJsonAndPrometheus)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_stats_test.qrec";
    ASSERT_EQ(runQrec(std::string("record radix -t 4 -s 1 -o ") + file),
              0);

    std::string json;
    ASSERT_EQ(runQrecCapture(std::string("stats -i ") + file, json), 0)
        << json;
    EXPECT_NE(json.find("\"sphere.threads\": 4"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"rnr.chunks\":"), std::string::npos);
    EXPECT_NE(json.find("\"rnr.chunk_size\": {\"count\":"),
              std::string::npos);

    std::string prom;
    ASSERT_EQ(runQrecCapture(std::string("stats -i ") + file +
                                 " --prom",
                             prom),
              0)
        << prom;
    EXPECT_NE(prom.find("# TYPE qr_rnr_chunks counter"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("qr_rnr_chunk_size_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("qr_rnr_chunk_size_count"), std::string::npos);
    std::remove(file);
}

TEST(QrecCli, TraceAndStatsRequireAnInput)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    EXPECT_NE(runQrec("trace"), 0);
    EXPECT_NE(runQrec("stats"), 0);
    EXPECT_NE(runQrec("trace -i /tmp/does_not_exist.qrec"), 0);
}

TEST(QrecCli, RejectsCorruptContainer)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_corrupt_test.qrec";
    std::FILE *f = std::fopen(file, "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a qrec container at all";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
    std::string out;
    EXPECT_NE(runQrecCapture(std::string("replay -i ") + file, out), 0);
    EXPECT_NE(out.find("corrupt"), std::string::npos) << out;
    std::remove(file);
}

/** Exit code of a qrec run (the raw system() status decoded). */
int
runQrecStatus(const std::string &args)
{
    int rc = runQrec(args);
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(QrecCli, AnalyzeExitCodeContract)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    // 0 = no races, 1 = races found, 2 = artifact unusable. CI
    // scripts branch on the distinction, so pin the exact values.
    const char *racy = "/tmp/qr_cli_exit_racy.qrec";
    const char *clean = "/tmp/qr_cli_exit_clean.qrec";
    ASSERT_EQ(runQrec(std::string("record race-demo-racy -t 4 -s 1 "
                                  "--exact-shadow -o ") + racy),
              0);
    ASSERT_EQ(runQrec(std::string("record race-demo-clean -t 4 -s 1 "
                                  "--exact-shadow -o ") + clean),
              0);
    EXPECT_EQ(runQrecStatus(std::string("analyze -i ") + racy), 1);
    EXPECT_EQ(runQrecStatus(std::string("analyze -i ") + clean), 0);
    EXPECT_EQ(runQrecStatus(std::string("analyze --predict -i ") +
                            clean),
              0);
    EXPECT_EQ(runQrecStatus("analyze -i /tmp/does_not_exist.qrec"), 2);
    EXPECT_EQ(runQrecStatus("analyze"), 2);
    std::remove(racy);
    std::remove(clean);
}

TEST(QrecCli, AnalyzePredictFindsTheMaskedRace)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_predict.qrec";
    ASSERT_EQ(runQrec(std::string("record masked-race-elided -t 2 "
                                  "-s 1 --exact-shadow -o ") + file),
              0);
    std::string out;
    int rc = runQrecCapture(std::string("analyze --predict -i ") +
                            file, out);
    EXPECT_NE(rc, 0);
    EXPECT_NE(out.find("predictive tiers"), std::string::npos) << out;
    EXPECT_NE(out.find("1 predicted"), std::string::npos) << out;
    EXPECT_NE(out.find("predicted lines:"), std::string::npos) << out;
    std::remove(file);
}

TEST(QrecCli, VerifyLintsArtifacts)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    // A healthy recording lints clean (exit 0)...
    const char *file = "/tmp/qr_cli_verify.qrec";
    ASSERT_EQ(runQrec(std::string("record fft -t 2 -s 1 -o ") + file),
              0);
    std::string out;
    EXPECT_EQ(runQrecCapture(std::string("verify ") + file, out) == 0,
              true)
        << out;
    EXPECT_NE(out.find("clean:"), std::string::npos) << out;

    // ...garbage is a diagnostic (exit 1), not a crash.
    const char *junkFile = "/tmp/qr_cli_verify_junk.qrs";
    std::FILE *f = std::fopen(junkFile, "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("garbage", 1, 7, f);
    std::fclose(f);
    EXPECT_EQ(runQrecStatus(std::string("verify ") + junkFile), 1);
    std::string diag;
    runQrecCapture(std::string("verify ") + junkFile, diag);
    EXPECT_NE(diag.find("QRV002"), std::string::npos) << diag;

    // Usage and I/O failures are exit 2.
    EXPECT_EQ(runQrecStatus("verify"), 2);
    EXPECT_EQ(runQrecStatus("verify /tmp/does_not_exist.qrs"), 2);
    EXPECT_EQ(runQrecStatus(std::string("verify --bogus ") + file), 2);
    std::remove(file);
    std::remove(junkFile);
}

TEST(QrecCli, VerifySarifOutput)
{
    if (!qrecAvailable())
        GTEST_SKIP();
    const char *file = "/tmp/qr_cli_verify_sarif.qrec";
    const char *sarif = "/tmp/qr_cli_verify_out.sarif";
    ASSERT_EQ(runQrec(std::string("record fft -t 2 -s 1 -o ") + file),
              0);
    EXPECT_EQ(runQrecStatus(std::string("verify --sarif -o ") + sarif +
                            " " + file),
              0);
    std::string text = readFileText(sarif);
    EXPECT_NE(text.find("\"version\": \"2.1.0\""), std::string::npos)
        << text;
    EXPECT_NE(text.find("\"name\": \"qrec-verify\""),
              std::string::npos);
    EXPECT_NE(text.find("\"id\": \"QRV016\""), std::string::npos)
        << "rule table must ride along even on clean runs";
    std::remove(file);
    std::remove(sarif);
}

} // namespace
