/**
 * @file
 * Unit tests for the sim/ foundation: formatting, deterministic RNG,
 * histograms, and the table renderer.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

namespace qr
{
namespace
{

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(csprintf("%08x", 0xbeefu), "0000beef");
    EXPECT_EQ(csprintf("empty"), "empty");
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next64() != c.next64();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        std::uint64_t v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, ZeroSeedDoesNotStick)
{
    Rng r(0);
    EXPECT_NE(r.next64(), 0u);
}

TEST(Mix64, InjectiveOnSample)
{
    // Distinct inputs should essentially never collide.
    std::uint64_t prev = mix64(0);
    for (std::uint64_t i = 1; i < 1000; ++i) {
        std::uint64_t h = mix64(i);
        EXPECT_NE(h, prev);
        prev = h;
    }
}

TEST(Histogram, CountsSumMinMax)
{
    Histogram h;
    for (std::uint64_t v : {5ull, 10ull, 0ull, 1000ull})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1015u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1015.0 / 4.0);
    EXPECT_DOUBLE_EQ(h.zeroFraction(), 0.25);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, QuantileIsMonotonic)
{
    Histogram h;
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        h.sample(r.below(1 << 20));
    std::uint64_t prev = 0;
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        std::uint64_t q = h.quantile(p);
        EXPECT_GE(q, prev);
        prev = q;
    }
    // The median of a uniform [0, 2^20) sample sits near 2^19 at
    // bucket resolution.
    std::uint64_t med = h.quantile(0.5);
    EXPECT_GE(med, 1u << 18);
    EXPECT_LE(med, 1u << 20);
}

TEST(Histogram, MergeEqualsCombinedSampling)
{
    Histogram a, b, both;
    Rng r(9);
    for (int i = 0; i < 500; ++i) {
        std::uint64_t v = r.below(1000);
        (i % 2 ? a : b).sample(v);
        both.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    EXPECT_EQ(a.buckets(), both.buckets());
}

TEST(Stats, RatioAndPercentHandleZeroDenominator)
{
    EXPECT_EQ(ratio(5, 0), 0.0);
    EXPECT_EQ(percent(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
}

TEST(Stats, Geomean)
{
    EXPECT_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-9);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row().cell("a").cell(std::uint64_t{1});
    t.row().cell("long-name").cell(std::uint64_t{12345});
    std::string s = t.str();
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("12345"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, NumericFormatting)
{
    Table t({"a", "b", "c"});
    t.row().cell(1.23456, 2).cellPct(12.345).cell(std::int64_t{-7});
    std::string s = t.str();
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("12.3%"), std::string::npos);
    EXPECT_NE(s.find("-7"), std::string::npos);
}

} // namespace
} // namespace qr
