/**
 * @file
 * Cross-module integration tests: record/replay determinism under
 * hostile configurations -- heavy migration, tiny CBUFs with forced
 * drains, coarse conflict granularity, signal storms, and combined
 * stressors. Each case is a full record -> replay -> digest-verify
 * round trip.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

void
expectDeterministic(const Program &prog, const MachineConfig &mcfg,
                    const RecorderConfig &rcfg, const char *what)
{
    RoundTrip rt = recordAndReplay(prog, mcfg, rcfg);
    ASSERT_TRUE(rt.replay.ok) << what << ": " << rt.replay.divergence;
    EXPECT_TRUE(rt.verify.ok) << what << ":\n" << rt.verify.str();
}

TEST(Integration, HeavyMigrationSixThreadsTwoCores)
{
    Workload w = makeRacyCounter(6, 1500, false);
    MachineConfig mcfg;
    mcfg.numCores = 2;
    mcfg.core.timeslice = 1800;
    RecordResult rec = recordProgram(w.program, mcfg);
    EXPECT_GT(rec.metrics.migrations, 0u);
    EXPECT_GT(rec.metrics.contextSwitches, 15u);
    ReplayResult rep = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(verifyDigests(rec.metrics.digests, rep.digests).ok);
}

TEST(Integration, TinyCbufWithForcedDrains)
{
    Workload w = makeFalseSharing(4, 800); // conflict storm
    RecorderConfig rcfg;
    rcfg.cbuf.entries = 16;
    rcfg.cbuf.drainThreshold = 1.0; // only full-buffer backpressure
    RecordResult rec = recordProgram(w.program, MachineConfig{}, rcfg);
    EXPECT_GT(rec.metrics.cbufForcedDrains, 0u);
    ReplayResult rep = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(verifyDigests(rec.metrics.digests, rep.digests).ok);
}

TEST(Integration, CoarseConflictGranularity)
{
    Workload w = makeRadix(4, 1);
    RecorderConfig rcfg;
    rcfg.rnr.lineBytes = 256; // sound but very false-conflict-prone
    expectDeterministic(w.program, MachineConfig{}, rcfg,
                        "granularity 256");
}

TEST(Integration, TinyBloomFilters)
{
    Workload w = makeOcean(4, 1);
    RecorderConfig rcfg;
    rcfg.rnr.bloom.bits = 64;
    RecordResult rec = recordProgram(w.program, MachineConfig{}, rcfg);
    ReplayResult rep = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(verifyDigests(rec.metrics.digests, rep.digests).ok);
}

TEST(Integration, TinyChunkLimit)
{
    Workload w = makeFft(4, 1);
    RecorderConfig rcfg;
    rcfg.rnr.maxChunkInstrs = 64;
    RecordResult rec = recordProgram(w.program, MachineConfig{}, rcfg);
    EXPECT_GT(rec.metrics.reasonCounts[static_cast<int>(
                  ChunkReason::SizeOverflow)],
              rec.metrics.chunks / 2);
    ReplayResult rep = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(verifyDigests(rec.metrics.digests, rep.digests).ok);
}

TEST(Integration, FilterFullSafetyValve)
{
    Workload w = makeLu(4, 1);
    RecorderConfig rcfg;
    rcfg.rnr.filterMaxFill = 32;
    RecordResult rec = recordProgram(w.program, MachineConfig{}, rcfg);
    EXPECT_GT(rec.metrics.reasonCounts[static_cast<int>(
                  ChunkReason::FilterFull)], 0u);
    ReplayResult rep = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(verifyDigests(rec.metrics.digests, rep.digests).ok);
}

TEST(Integration, SignalStormAcrossTimeslices)
{
    for (Tick slice : {2500u, 9000u}) {
        Workload w = makeSignalStress(14);
        MachineConfig mcfg;
        mcfg.core.timeslice = slice;
        RecordResult rec = recordProgram(w.program, mcfg);
        EXPECT_GT(rec.metrics.signalsDelivered, 0u);
        ReplayResult rep = replaySphere(w.program, rec.logs);
        ASSERT_TRUE(rep.ok) << "slice " << slice << ": "
                            << rep.divergence;
        EXPECT_TRUE(
            verifyDigests(rec.metrics.digests, rep.digests).ok)
            << "slice " << slice;
    }
}

TEST(Integration, SequentialConsistencyDepthOne)
{
    // sbDepth 1 is the closest the machine gets to SC; RSW must then
    // be tiny and replay still exact.
    Workload w = makeRadix(4, 1);
    MachineConfig mcfg;
    mcfg.core.sbDepth = 1;
    RecordResult rec = recordProgram(w.program, mcfg);
    EXPECT_LE(rec.metrics.rswValues.max(), 1u);
    ReplayResult rep = replaySphere(w.program, rec.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(verifyDigests(rec.metrics.digests, rep.digests).ok);
}

TEST(Integration, DeepStoreBuffer)
{
    Workload w = makeWaterNsq(4, 1);
    MachineConfig mcfg;
    mcfg.core.sbDepth = 64;
    mcfg.core.sbDrainInterval = 12; // drains lag far behind retire
    expectDeterministic(w.program, mcfg, RecorderConfig{},
                        "deep store buffer");
}

TEST(Integration, EverythingHostileAtOnce)
{
    Workload w = makeProdCons(5, 60);
    MachineConfig mcfg;
    mcfg.numCores = 3;
    mcfg.core.timeslice = 2100;
    mcfg.core.sbDepth = 16;
    mcfg.core.sbDrainInterval = 7;
    RecorderConfig rcfg;
    rcfg.rnr.bloom.bits = 128;
    rcfg.rnr.maxChunkInstrs = 512;
    rcfg.cbuf.entries = 64;
    expectDeterministic(w.program, mcfg, rcfg, "hostile combo");
}

TEST(Integration, RecordTwiceProducesIdenticalLogs)
{
    for (const char *name : {"radix", "barnes"}) {
        Workload a = makeByName(name, 4, 1);
        Workload b = makeByName(name, 4, 1);
        RecordResult ra = recordProgram(a.program);
        RecordResult rb = recordProgram(b.program);
        EXPECT_EQ(ra.logs.serialize(), rb.logs.serialize()) << name;
    }
}

TEST(Integration, ExtendedSuiteHostileSchedules)
{
    for (const auto &spec : extendedSuite()) {
        Workload w = spec.make(4, 1);
        MachineConfig mcfg;
        mcfg.numCores = 2;
        mcfg.core.timeslice = 2300;
        expectDeterministic(w.program, mcfg, RecorderConfig{},
                            spec.name.c_str());
    }
}

} // namespace
} // namespace qr
