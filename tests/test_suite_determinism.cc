/**
 * @file
 * The headline integration test: every SPLASH-2-analog workload must
 * record under QuickRec and replay bit-exactly (memory, output, and
 * per-thread register digests) -- the paper's replay-validation claim.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

class SuiteDeterminism : public ::testing::TestWithParam<WorkloadSpec>
{
};

TEST_P(SuiteDeterminism, RecordsAndReplaysExactly)
{
    Workload w = GetParam().make(4, 1);
    MachineConfig mcfg;
    mcfg.core.timeslice = 10000;
    RoundTrip rt = recordAndReplay(w.program, mcfg);
    ASSERT_TRUE(rt.replay.ok) << w.name << ": " << rt.replay.divergence;
    EXPECT_TRUE(rt.verify.ok) << w.name << ":\n" << rt.verify.str();
    EXPECT_GT(rt.record.metrics.chunks, 0u) << w.name;
    EXPECT_EQ(rt.record.metrics.instrs, rt.replay.replayedInstrs)
        << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Splash2, SuiteDeterminism, ::testing::ValuesIn(splash2Suite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

INSTANTIATE_TEST_SUITE_P(
    Extended, SuiteDeterminism, ::testing::ValuesIn(extendedSuite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace qr
