/**
 * @file
 * Observability-layer tests: the structured event tracer (rings,
 * QTR1 round trips, Chrome trace-event JSON), the stats snapshot
 * exporters (JSON + Prometheus text), the profiling scopes, the
 * bench-JSON schema-v2 stats section -- and the differential pin that
 * armed tracing never changes what gets recorded.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "obs/event_trace.hh"
#include "obs/profile.hh"
#include "obs/stats_export.hh"
#include "sim/bench_json.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

/** Every test leaves the global tracer disarmed and empty. */
class Obs : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        eventTrace().disarm();
        eventTrace().flush();
    }
};

TraceEvent
ev(TraceEventKind kind, std::int32_t lane, Tick tick, std::uint64_t a,
   std::uint64_t b, Tick dur = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.lane = lane;
    e.tick = tick;
    e.a = a;
    e.b = b;
    e.dur = dur;
    return e;
}

// --- tracer rings -------------------------------------------------------

TEST_F(Obs, DisarmedEmitIsANoOp)
{
    eventTrace().emit(TraceEventKind::ChunkEnd, 1, 10, 2, 3);
    EXPECT_EQ(eventTrace().bufferedEvents(), 0u);
    TraceTimeline t = eventTrace().flush();
    EXPECT_TRUE(t.events.empty());
    EXPECT_EQ(t.dropped, 0u);
}

TEST_F(Obs, FullRingDropsNewestAndCounts)
{
    eventTrace().arm(/* ring_events = */ 8);
    for (Tick i = 0; i < 20; ++i)
        eventTrace().emit(TraceEventKind::ChunkEnd, 1, i, i, 0);
    EXPECT_EQ(eventTrace().bufferedEvents(), 8u);
    TraceTimeline t = eventTrace().flush();
    ASSERT_EQ(t.events.size(), 8u);
    EXPECT_EQ(t.dropped, 12u);
    // Drop-newest: the survivors are the first 8 emitted.
    for (Tick i = 0; i < 8; ++i)
        EXPECT_EQ(t.events[i].tick, i);
    // The flush drained and cleared everything.
    EXPECT_EQ(eventTrace().bufferedEvents(), 0u);
    TraceTimeline again = eventTrace().flush();
    EXPECT_TRUE(again.events.empty());
    EXPECT_EQ(again.dropped, 0u);
}

TEST_F(Obs, RearmClearsBufferedEvents)
{
    eventTrace().arm();
    eventTrace().emit(TraceEventKind::CbufDrain, 0, 5, 7, 1);
    EXPECT_EQ(eventTrace().bufferedEvents(), 1u);
    eventTrace().arm();
    EXPECT_EQ(eventTrace().bufferedEvents(), 0u);
}

TEST_F(Obs, FlushSortsByTickThenLane)
{
    eventTrace().arm();
    eventTrace().emit(TraceEventKind::ChunkEnd, 3, 20, 0, 0);
    eventTrace().emit(TraceEventKind::ChunkEnd, 2, 10, 0, 0);
    eventTrace().emit(TraceEventKind::ChunkEnd, 1, 10, 0, 0);
    TraceTimeline t = eventTrace().flush();
    ASSERT_EQ(t.events.size(), 3u);
    EXPECT_EQ(t.events[0].lane, 1);
    EXPECT_EQ(t.events[1].lane, 2);
    EXPECT_EQ(t.events[2].tick, 20u);
}

// --- QTR1 byte stream ---------------------------------------------------

TEST_F(Obs, TimelineSerializeRoundTrips)
{
    TraceTimeline t;
    t.dropped = 3;
    t.events.push_back(ev(TraceEventKind::ChunkEnd, 1, 100, 12, 5, 50));
    t.events.push_back(ev(TraceEventKind::CbufDrain, 0, 110, 64, 1));
    t.events.push_back(ev(TraceEventKind::FaultFire, -1, 0, 2, 9));
    t.events.push_back(
        ev(TraceEventKind::ReplayInject, 4, 7, 1, 0));
    std::vector<std::uint8_t> bytes = t.serialize();
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_EQ(bytes[0], 'Q');
    TraceTimeline back = TraceTimeline::deserialize(bytes);
    EXPECT_EQ(back.dropped, t.dropped);
    ASSERT_EQ(back.events.size(), t.events.size());
    for (std::size_t i = 0; i < t.events.size(); ++i)
        EXPECT_EQ(back.events[i], t.events[i]) << "event " << i;
}

TEST_F(Obs, DeserializeRejectsCorruption)
{
    TraceTimeline t;
    t.events.push_back(ev(TraceEventKind::ChunkEnd, 1, 1, 1, 1));
    std::vector<std::uint8_t> good = t.serialize();

    std::vector<std::uint8_t> magic = good;
    magic[2] = 'X';
    EXPECT_THROW(TraceTimeline::deserialize(magic), ParseError);

    std::vector<std::uint8_t> truncated(good.begin(), good.end() - 1);
    EXPECT_THROW(TraceTimeline::deserialize(truncated), ParseError);

    std::vector<std::uint8_t> trailing = good;
    trailing.push_back(0);
    EXPECT_THROW(TraceTimeline::deserialize(trailing), ParseError);

    std::vector<std::uint8_t> badKind = {'Q', 'T', 'R', '1', 0, 1, 99};
    EXPECT_THROW(TraceTimeline::deserialize(badKind), ParseError);
}

// --- Chrome trace-event JSON --------------------------------------------

TEST_F(Obs, ChromeJsonGoldenSingleSpan)
{
    TraceTimeline t;
    t.events.push_back(ev(TraceEventKind::ChunkEnd, 1, 100, 12, 0, 50));
    const char *expected =
        "{\"traceEvents\": [\n"
        "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \"record threads\"}},\n"
        "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 1, \"args\": {\"name\": \"tid 1\"}},\n"
        "  {\"name\": \"chunk\", \"cat\": \"record threads\", "
        "\"ph\": \"X\", \"dur\": 50, \"pid\": 1, \"tid\": 1, "
        "\"ts\": 100, \"args\": {\"size\": 12, "
        "\"reason\": \"conflict-raw\"}}\n"
        "], \"displayTimeUnit\": \"ms\", "
        "\"metadata\": {\"tool\": \"qrec trace\", "
        "\"droppedEvents\": 0}}\n";
    EXPECT_EQ(t.chromeJson(), expected);
}

TEST_F(Obs, ChromeJsonShapesEveryKind)
{
    TraceTimeline t;
    t.dropped = 2;
    t.events.push_back(ev(TraceEventKind::ChunkEnd, 1, 10, 5, 5, 4));
    t.events.push_back(ev(TraceEventKind::CbufDrain, 0, 20, 64, 1));
    t.events.push_back(ev(TraceEventKind::RsmSwitchIn, 2, 30, 1, 0));
    t.events.push_back(ev(TraceEventKind::RsmSwitchOut, 2, 40, 1, 0));
    t.events.push_back(ev(TraceEventKind::SyscallSpan, 1, 50, 3, 0, 6));
    t.events.push_back(ev(TraceEventKind::ReplayInject, 1, 60, 0, 0));
    // Spans with a zero recorded duration still need dur >= 1 to be
    // clickable in the viewer.
    t.events.push_back(ev(TraceEventKind::ReplayChunk, 1, 70, 9, 7, 0));
    std::string json = t.chromeJson();
    EXPECT_NE(json.find("\"name\": \"cbuf-drain\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\", \"s\": \"t\""),
              std::string::npos);
    EXPECT_NE(json.find("\"records\": 64, \"forced\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"rsm-switch-in\""),
              std::string::npos);
    EXPECT_NE(json.find("\"reason\": \"drain\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\", \"dur\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"process_name\""),
              std::string::npos);
    // Four distinct pid groups appear: threads, cores, replay.
    EXPECT_NE(json.find("\"record cores\""), std::string::npos);
    EXPECT_NE(json.find("\"replay\""), std::string::npos);
}

TEST_F(Obs, TimelineFromSphereCoversEveryChunk)
{
    Workload w = makeFft(4, 1);
    RecordResult rec = recordProgram(w.program);
    TraceTimeline t = timelineFromSphere(rec.logs);
    EXPECT_EQ(t.events.size(), rec.logs.totalChunks());
    for (const TraceEvent &e : t.events) {
        EXPECT_EQ(e.kind, TraceEventKind::ChunkEnd);
        EXPECT_GE(e.dur, 1u);
    }
    for (std::size_t i = 1; i < t.events.size(); ++i)
        EXPECT_LE(t.events[i - 1].tick, t.events[i].tick);
}

// --- the observational invariant ----------------------------------------

/**
 * Recording with the tracer armed must be invisible: same sphere
 * bytes, same digests, same chunk boundaries, for every workload in
 * the paper's suite.
 */
TEST_F(Obs, ArmedTracingChangesNothing)
{
    for (const WorkloadSpec &spec : splash2Suite()) {
        SCOPED_TRACE(spec.name);
        Workload w = spec.make(4, 1);

        eventTrace().disarm();
        eventTrace().flush();
        RecordResult off = recordProgram(w.program);

        eventTrace().arm();
        RecordResult on = recordProgram(w.program);
        eventTrace().disarm();

        EXPECT_EQ(off.logs.serialize(), on.logs.serialize());
        EXPECT_EQ(off.metrics.digests, on.metrics.digests);
        EXPECT_EQ(off.metrics.chunks, on.metrics.chunks);
        EXPECT_EQ(off.metrics.cycles, on.metrics.cycles);
        EXPECT_TRUE(off.timeline.events.empty());
        EXPECT_FALSE(on.timeline.events.empty());
    }
}

// --- profiling scopes ---------------------------------------------------

TEST_F(Obs, ProfileScopeAccumulates)
{
    profiler().reset();
    {
        ProfileScope scope(ProfilePhase::Analyze);
        scope.cycles(42);
    }
    {
        ProfileScope scope(ProfilePhase::Analyze);
        scope.cycles(8);
    }
    ProfilePhaseTotals t = profiler().totals(ProfilePhase::Analyze);
    EXPECT_EQ(t.calls, 2u);
    EXPECT_EQ(t.modeledCycles, 50u);
    EXPECT_GE(t.wallMicros, 0.0);
    profiler().reset();
    t = profiler().totals(ProfilePhase::Analyze);
    EXPECT_EQ(t.calls, 0u);
}

TEST_F(Obs, ProfileSnapshotSkipsIdlePhases)
{
    profiler().reset();
    {
        ProfileScope scope(ProfilePhase::GraphBuild);
        scope.cycles(7);
    }
    StatsSnapshot s;
    profileSnapshotInto(s);
    const StatScalar *calls = s.find("profile.graph-build.calls");
    ASSERT_NE(calls, nullptr);
    EXPECT_EQ(calls->value, 1.0);
    const StatScalar *cyc = s.find("profile.graph-build.modeled_cycles");
    ASSERT_NE(cyc, nullptr);
    EXPECT_EQ(cyc->value, 7.0);
    EXPECT_EQ(s.find("profile.analyze.calls"), nullptr);
    profiler().reset();
}

TEST_F(Obs, RecordingPopulatesTheRecordPhase)
{
    profiler().reset();
    Workload w = makeLu(4, 1);
    RecordResult rec = recordProgram(w.program);
    ProfilePhaseTotals t = profiler().totals(ProfilePhase::Record);
    EXPECT_EQ(t.calls, 1u);
    EXPECT_EQ(t.modeledCycles, rec.metrics.cycles);
    ProfilePhaseTotals d = profiler().totals(ProfilePhase::CbufDrain);
    EXPECT_EQ(d.calls, rec.metrics.cbufDrains);
    profiler().reset();
}

// --- stats snapshots ----------------------------------------------------

TEST_F(Obs, PrometheusGolden)
{
    StatsSnapshot s;
    s.counter("rnr.chunks", 7, "chunk records logged");
    s.gauge("sim.ipc", 0.5, "aggregate instructions per cycle");
    Histogram h;
    h.sample(0);
    h.sample(1);
    h.sample(6);
    s.histogram("rnr.chunk_size", h, "instructions per chunk");
    const char *expected =
        "# HELP qr_rnr_chunks chunk records logged\n"
        "# TYPE qr_rnr_chunks counter\n"
        "qr_rnr_chunks 7\n"
        "# HELP qr_sim_ipc aggregate instructions per cycle\n"
        "# TYPE qr_sim_ipc gauge\n"
        "qr_sim_ipc 0.5\n"
        "# HELP qr_rnr_chunk_size instructions per chunk\n"
        "# TYPE qr_rnr_chunk_size histogram\n"
        "qr_rnr_chunk_size_bucket{le=\"0\"} 1\n"
        "qr_rnr_chunk_size_bucket{le=\"1\"} 2\n"
        "qr_rnr_chunk_size_bucket{le=\"3\"} 2\n"
        "qr_rnr_chunk_size_bucket{le=\"7\"} 3\n"
        "qr_rnr_chunk_size_bucket{le=\"+Inf\"} 3\n"
        "qr_rnr_chunk_size_sum 7\n"
        "qr_rnr_chunk_size_count 3\n";
    EXPECT_EQ(s.prometheus(), expected);
}

TEST_F(Obs, PromNameSanitizes)
{
    EXPECT_EQ(promName("rnr.term.conflict-raw"),
              "qr_rnr_term_conflict_raw");
    EXPECT_EQ(promName("log.mem_bytes_per_kinstr"),
              "qr_log_mem_bytes_per_kinstr");
}

TEST_F(Obs, JsonGolden)
{
    StatsSnapshot s;
    s.counter("rnr.chunks", 7, "chunk records logged");
    Histogram h;
    h.sample(4);
    s.histogram("rnr.rsw", h, "rsw");
    const char *expected =
        "{\n"
        "  \"rnr.chunks\": 7,\n"
        "  \"rnr.rsw\": {\"count\": 1, \"sum\": 4, \"min\": 4, "
        "\"max\": 4, \"mean\": 4, \"p50\": 6, \"p90\": 6, "
        "\"p99\": 6}\n"
        "}";
    EXPECT_EQ(s.json(), expected);
}

TEST_F(Obs, SnapshotMetricsMatchesStatsTextNames)
{
    Workload w = makeRadix(4, 1);
    RecordResult rec = recordProgram(w.program);
    StatsSnapshot s = snapshotMetrics(rec.metrics);
    const StatScalar *chunks = s.find("rnr.chunks");
    ASSERT_NE(chunks, nullptr);
    EXPECT_EQ(chunks->value,
              static_cast<double>(rec.metrics.chunks));
    EXPECT_NE(s.find("rnr.term.conflict-raw"), nullptr);
    EXPECT_NE(s.find("capo.overhead_cycles"), nullptr);
    EXPECT_NE(s.find("log.memory_bytes"), nullptr);
    ASSERT_EQ(s.histograms.size(), 2u);
    EXPECT_EQ(s.histograms[0].hist.count(), rec.metrics.chunks);
}

TEST_F(Obs, SnapshotSphereAgreesWithMetrics)
{
    Workload w = makeOcean(4, 1);
    RecordResult rec = recordProgram(w.program);
    StatsSnapshot fromMetrics = snapshotMetrics(rec.metrics);
    StatsSnapshot fromSphere = snapshotSphere(rec.logs);
    // Everything derivable from the sphere alone matches the live run.
    for (const char *name :
         {"rnr.chunks", "rnr.term.conflict-raw", "rnr.term.syscall",
          "rnr.rsw_nonzero", "log.memory_bytes", "log.input_bytes",
          "capo.input_records"}) {
        const StatScalar *a = fromMetrics.find(name);
        const StatScalar *b = fromSphere.find(name);
        ASSERT_NE(a, nullptr) << name;
        ASSERT_NE(b, nullptr) << name;
        EXPECT_EQ(a->value, b->value) << name;
    }
}

// --- bench-JSON schema v2 -----------------------------------------------

TEST_F(Obs, BenchJsonStatsSectionRoundTrips)
{
    BenchJson j("M9");
    j.add("fft", "record_mips", 41.5);
    j.addStat("profile.record.calls", 3);
    j.addStat("profile.record.wall_micros", 1200.5);
    std::string text = j.str();
    EXPECT_NE(text.find("\"schema\": 2"), std::string::npos);
    BenchDoc doc;
    std::string err;
    ASSERT_TRUE(parseBenchJson(text, doc, err)) << err;
    EXPECT_EQ(doc.schema, 2);
    ASSERT_EQ(doc.stats.size(), 2u);
    ASSERT_EQ(doc.results.size(), 1u);
    bool sawWall = false;
    for (const BenchStat &st : doc.stats)
        if (st.name == "profile.record.wall_micros") {
            EXPECT_DOUBLE_EQ(st.value, 1200.5);
            sawWall = true;
        }
    EXPECT_TRUE(sawWall);
}

TEST_F(Obs, BenchJsonWithoutStatsStaysV1)
{
    BenchJson j("M9");
    j.add("fft", "record_mips", 41.5);
    std::string text = j.str();
    EXPECT_NE(text.find("\"schema\": 1"), std::string::npos);
    EXPECT_EQ(text.find("\"stats\""), std::string::npos);
    BenchDoc doc;
    std::string err;
    ASSERT_TRUE(parseBenchJson(text, doc, err)) << err;
    EXPECT_EQ(doc.schema, 1);
    EXPECT_TRUE(doc.stats.empty());
}

TEST_F(Obs, BenchJsonRejectsBadSchemas)
{
    BenchDoc doc;
    std::string err;
    EXPECT_FALSE(parseBenchJson(
        "{\"bench\": \"X\", \"schema\": 3, \"results\": []}", doc,
        err));
    // A stats section on a v1 document is a schema violation, not a
    // silent extension.
    EXPECT_FALSE(parseBenchJson(
        "{\"bench\": \"X\", \"schema\": 1, \"results\": [], "
        "\"stats\": {\"a\": 1}}",
        doc, err));
    EXPECT_NE(err.find("schema version 2"), std::string::npos);
    EXPECT_FALSE(parseBenchJson(
        "{\"bench\": \"X\", \"schema\": 2, \"results\": [], "
        "\"stats\": {\"a\": \"nope\"}}",
        doc, err));
}

TEST_F(Obs, BenchJsonMergeQualifiesStatNames)
{
    BenchJson a("A");
    a.add("fft", "m", 1.0);
    a.addStat("profile.record.calls", 2);
    BenchJson b("B");
    b.add("lu", "m", 2.0);
    BenchDoc merged =
        mergeBenchDocs("ALL", {a.document(), b.document()});
    EXPECT_EQ(merged.schema, 2);
    ASSERT_EQ(merged.stats.size(), 1u);
    EXPECT_EQ(merged.stats[0].name, "A.profile.record.calls");
    std::string err;
    BenchDoc back;
    ASSERT_TRUE(parseBenchJson(merged.str(), back, err)) << err;
    ASSERT_EQ(back.stats.size(), 1u);
}

} // namespace
} // namespace qr
