/**
 * @file
 * Ground-truth tests for the predictive race pass (analyze/predict.hh)
 * against the masked-race twin workloads: the elided twin plants a
 * race the recorded schedule fully masks (zero witnessed races on the
 * planted line) and the pass must predict exactly that line; the clean
 * twin locks the same access consistently and must predict nothing.
 * The whole workload suite then pins the false-positive rate at zero.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/predict.hh"
#include "analyze/race_analyzer.hh"
#include "capo/payload_view.hh"
#include "capo/sphere.hh"
#include "core/session.hh"
#include "obs/stats_export.hh"
#include "sim/bench_json.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

RecordResult
recordExact(const Workload &w)
{
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = true;
    return recordProgram(w.program, {}, rcfg);
}

/** Witnessed pass (conflicts retained) + predictive pass. */
PredictReport
predictOver(const SphereLogs &logs, RaceReport *witnessed = nullptr)
{
    std::vector<std::uint8_t> bytes = logs.serialize();
    StreamOptions opt;
    opt.keepConflicts = true;
    SphereCursor cur{PayloadView(bytes)};
    RaceReport rep = analyzeSphereStreaming(cur, opt);
    SphereCursor pcur{PayloadView(bytes)};
    PredictReport pred = predictRaces(pcur, rep);
    if (witnessed)
        *witnessed = std::move(rep);
    return pred;
}

bool
contains(const std::vector<Addr> &v, Addr a)
{
    return std::find(v.begin(), v.end(), a) != v.end();
}

TEST(Predict, ElidedTwinPredictsThePlantedLine)
{
    Addr planted = 0;
    Workload w = makeMaskedRaceDemo(2, 50, /*elide_lock=*/true,
                                    &planted);
    ASSERT_NE(planted, 0u);
    RecordResult rec = recordExact(w);
    RaceReport witnessed;
    PredictReport pred = predictOver(rec.logs, &witnessed);

    ASSERT_TRUE(pred.exact);
    // The schedule masked the race completely: the witnessed pass must
    // NOT flag the planted line (with two threads the pre/post bumps
    // are serialized through the recorded lock-handoff chain)...
    EXPECT_FALSE(contains(witnessed.racyLines, planted));
    // ...and the predictive pass must recover exactly it.
    EXPECT_EQ(pred.predicted, 1u);
    EXPECT_TRUE(contains(pred.predictedLines, planted));

    // The masked pair is unheld on both endpoints by construction.
    bool sawPredicted = false;
    for (const PredictFinding &f : pred.findings) {
        if (f.tier != RaceTier::Predicted)
            continue;
        sawPredicted = true;
        EXPECT_FALSE(f.srcHeld);
        EXPECT_FALSE(f.dstHeld);
        EXPECT_TRUE(contains(f.edge.lines, planted));
    }
    EXPECT_TRUE(sawPredicted);

    // The recording really exercised the contended futex protocol.
    EXPECT_EQ(pred.hardSyncEdges, 2u); // spawn + terminal wake
    EXPECT_GT(pred.softSyncEdges, 10u);
    EXPECT_GT(pred.lockProtected, 0u);
}

TEST(Predict, CleanTwinPredictsNothing)
{
    Addr planted = 0;
    Workload w = makeMaskedRaceDemo(2, 50, /*elide_lock=*/false,
                                    &planted);
    RecordResult rec = recordExact(w);
    RaceReport witnessed;
    PredictReport pred = predictOver(rec.logs, &witnessed);

    ASSERT_TRUE(pred.exact);
    EXPECT_EQ(pred.predicted, 0u);
    EXPECT_TRUE(pred.predictedLines.empty());
    // Consistent locking shows up as both-held evidence.
    EXPECT_GT(pred.lockProtected, 0u);
    for (const PredictFinding &f : pred.findings)
        EXPECT_NE(f.tier, RaceTier::Predicted);
}

TEST(Predict, TierCountsPartitionTheConflictEdges)
{
    Workload w = makeMaskedRaceDemo(2, 30, /*elide_lock=*/true);
    RecordResult rec = recordExact(w);
    RaceReport witnessed;
    PredictReport pred = predictOver(rec.logs, &witnessed);

    // Witnessed tier restates the witnessed analyzer's race list; the
    // four tiers partition every cross-thread conflict edge.
    EXPECT_EQ(pred.witnessed, witnessed.races.size());
    EXPECT_EQ(pred.witnessed + pred.predicted +
                  pred.locksetCandidates + pred.synchronized,
              witnessed.conflicts.size());
    // Findings carry only the two actionable tiers.
    for (const PredictFinding &f : pred.findings)
        EXPECT_TRUE(f.tier == RaceTier::Predicted ||
                    f.tier == RaceTier::LocksetCandidate);
}

TEST(Predict, ShadowlessSphereDegradesToWitnessedCount)
{
    Workload w = makeMaskedRaceDemo(2, 20, /*elide_lock=*/true);
    RecordResult rec = recordProgram(w.program); // Bloom-only sphere
    RaceReport witnessed;
    PredictReport pred = predictOver(rec.logs, &witnessed);

    EXPECT_FALSE(pred.exact);
    EXPECT_EQ(pred.witnessed, witnessed.races.size());
    EXPECT_EQ(pred.predicted, 0u);
    EXPECT_EQ(pred.locksetCandidates, 0u);
    EXPECT_TRUE(pred.findings.empty());
}

TEST(Predict, ReportRendersTiersAndLines)
{
    Addr planted = 0;
    Workload w = makeMaskedRaceDemo(2, 30, /*elide_lock=*/true,
                                    &planted);
    RecordResult rec = recordExact(w);
    PredictReport pred = predictOver(rec.logs);

    std::string text = pred.str();
    EXPECT_NE(text.find("predictive tiers"), std::string::npos);
    EXPECT_NE(text.find("predicted lines:"), std::string::npos);
    EXPECT_NE(text.find(csprintf("0x%x", planted)), std::string::npos);

    StatsSnapshot snap;
    pred.statsInto(snap);
    bool sawPredictedStat = false;
    for (const StatScalar &s : snap.scalars)
        if (s.name == "analyze.predict.predicted") {
            sawPredictedStat = true;
            EXPECT_EQ(s.value, static_cast<double>(pred.predicted));
        }
    EXPECT_TRUE(sawPredictedStat);

    BenchDoc doc;
    pred.benchInto(doc, "twin");
    bool sawRow = false;
    for (const BenchResult &r : doc.results)
        if (r.metric == "predicted_races") {
            sawRow = true;
            EXPECT_EQ(r.workload, "twin");
        }
    EXPECT_TRUE(sawRow);
}

/**
 * Zero predicted races across the entire workload suite: the
 * sync-preserving order plus the lockset evidence must never promote
 * a benign edge on any suite or micro workload. This is the
 * false-positive budget of the whole feature.
 */
TEST(Predict, SuiteHasZeroPredictedRaces)
{
    std::vector<Workload> all;
    for (const auto &spec : splash2Suite())
        all.push_back(spec.make(4, 1));
    all.push_back(makeRacyCounter(4, 200, false));
    all.push_back(makeRacyCounter(4, 200, true));
    all.push_back(makePingPong(150));
    all.push_back(makeFalseSharing(4, 200));
    all.push_back(makeProdCons(4, 50));
    all.push_back(makeRaceDemo(4, 100, true));
    all.push_back(makeRaceDemo(4, 100, false));
    all.push_back(makeMaskedRaceDemo(4, 25, false));

    for (const Workload &w : all) {
        RecordResult rec = recordExact(w);
        PredictReport pred = predictOver(rec.logs);
        EXPECT_EQ(pred.predicted, 0u) << w.name;
        EXPECT_TRUE(pred.predictedLines.empty()) << w.name;
    }
}

} // namespace
} // namespace qr
