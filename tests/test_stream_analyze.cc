/**
 * @file
 * Differential tests of the streaming analyzer: analyzeSphereStreaming
 * must be bit-identical to the eager analyzeSphere on every suite
 * workload, in exact and degraded mode, for any window size, and on
 * salvaged corpus spheres. The eager path is the oracle; the streaming
 * path is the one qrec and the scale bench actually run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/race_analyzer.hh"
#include "capo/log_store.hh"
#include "capo/payload_view.hh"
#include "capo/sphere.hh"
#include "core/session.hh"
#include "sim/bench_json.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

RecordResult
recordExact(const Workload &w, std::uint32_t bloom_bits = 1024)
{
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = true;
    rcfg.rnr.bloom.bits = bloom_bits;
    return recordProgram(w.program, {}, rcfg);
}

/**
 * Run both analyzers over @p logs and require bit-identical reports:
 * same human-readable text, same bench JSON, same edges, same audit.
 * The streaming report intentionally omits the schedule and vector
 * clocks, and always reports a single fixpoint pass -- everything else
 * must match byte for byte.
 */
void
expectStreamingIdentical(const SphereLogs &logs, const std::string &tag,
                         std::uint32_t window = 0)
{
    // The oracle runs to natural convergence (cap 0): equivalence to
    // the streaming single pass only holds at the true fixpoint, and
    // the legacy 64-round default provably cuts radix short.
    RaceReport eager = analyzeSphere(logs, /*fixpoint_cap=*/0);
    ASSERT_FALSE(eager.fixpointCapped) << tag;

    std::vector<std::uint8_t> bytes = logs.serialize();
    SphereCursor cur{PayloadView(bytes)};
    StreamOptions opt;
    opt.window = window;
    StreamStats stats;
    RaceReport stream = analyzeSphereStreaming(cur, opt, &stats);

    EXPECT_EQ(stream.str(), eager.str()) << tag;
    EXPECT_EQ(stream.toBenchDoc(tag).str(), eager.toBenchDoc(tag).str())
        << tag;

    EXPECT_EQ(stream.exact, eager.exact) << tag;
    EXPECT_EQ(stream.nThreads, eager.nThreads) << tag;
    EXPECT_EQ(stream.nChunks, eager.nChunks) << tag;
    EXPECT_EQ(stream.programEdges, eager.programEdges) << tag;
    EXPECT_EQ(stream.syncEdges, eager.syncEdges) << tag;
    EXPECT_EQ(stream.conflictEdges, eager.conflictEdges) << tag;
    EXPECT_EQ(stream.totalEdges, eager.totalEdges) << tag;
    EXPECT_EQ(stream.reducedEdges, eager.reducedEdges) << tag;
    EXPECT_EQ(stream.threadSlot, eager.threadSlot) << tag;
    EXPECT_FALSE(stream.fixpointCapped) << tag;

    EXPECT_EQ(stream.conflicts, eager.conflicts) << tag;
    EXPECT_EQ(stream.races, eager.races) << tag;
    EXPECT_EQ(stream.racyLines, eager.racyLines) << tag;

    EXPECT_EQ(stream.audit.conflictTerminations,
              eager.audit.conflictTerminations) << tag;
    EXPECT_EQ(stream.audit.trueConflicts, eager.audit.trueConflicts)
        << tag;
    EXPECT_EQ(stream.audit.bloomFalseConflicts,
              eager.audit.bloomFalseConflicts) << tag;
    EXPECT_EQ(stream.audit.unattributed, eager.audit.unattributed)
        << tag;
    for (int r = 0; r < numChunkReasons; ++r)
        EXPECT_EQ(stream.reasonCounts[r], eager.reasonCounts[r])
            << tag << " reason " << r;

    // The streaming report is the flat one: no schedule, no clocks.
    EXPECT_TRUE(stream.schedule.empty()) << tag;
    EXPECT_TRUE(stream.vectorClocks.empty()) << tag;
    EXPECT_GT(stats.peakResidentBytes, 0u) << tag;
    EXPECT_GT(stats.windowBatches, 0u) << tag;
}

TEST(StreamAnalyze, EverySuiteWorkloadExactMode)
{
    for (const WorkloadSpec &spec : splash2Suite()) {
        Workload w = spec.make(4, 1);
        RecordResult rec = recordExact(w);
        ASSERT_TRUE(rec.logs.hasShadows()) << spec.name;
        expectStreamingIdentical(rec.logs, spec.name);
    }
}

TEST(StreamAnalyze, EverySuiteWorkloadDegradedMode)
{
    for (const WorkloadSpec &spec : splash2Suite()) {
        Workload w = spec.make(4, 1);
        RecordResult rec = recordProgram(w.program);
        ASSERT_FALSE(rec.logs.hasShadows()) << spec.name;
        expectStreamingIdentical(rec.logs, spec.name + "-degraded");
    }
}

TEST(StreamAnalyze, RaceDemoTwinsAcrossWindowSizes)
{
    // A window of 1 garbage-collects after every chunk; a window far
    // larger than the sphere never does mid-stream. Either way the
    // report must not change -- the window is purely a memory knob.
    for (bool racy : {false, true}) {
        Workload w = makeRaceDemo(4, 100, racy);
        RecordResult rec = recordExact(w);
        for (std::uint32_t window : {1u, 7u, 1u << 20}) {
            expectStreamingIdentical(
                rec.logs,
                w.name + (racy ? "-racy-w" : "-clean-w") +
                    std::to_string(window),
                window);
        }
    }
}

TEST(StreamAnalyze, TinyFiltersKeepTheAuditIdentical)
{
    // Deliberately tiny Bloom filters force aliasing, so the precision
    // audit has real work in both true- and false-conflict buckets.
    Workload w = makeByName("radix", 4, 1);
    RecordResult rec = recordExact(w, /*bloom_bits=*/64);
    expectStreamingIdentical(rec.logs, "radix-tiny-bloom");
}

TEST(StreamAnalyze, DroppingConflictsKeepsRacesAndCounters)
{
    Workload w = makeRaceDemo(4, 100, true);
    RecordResult rec = recordExact(w);
    RaceReport eager = analyzeSphere(rec.logs);

    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    SphereCursor cur{PayloadView(bytes)};
    StreamOptions opt;
    opt.keepConflicts = false;
    RaceReport stream = analyzeSphereStreaming(cur, opt);

    EXPECT_TRUE(stream.conflicts.empty());
    EXPECT_EQ(stream.conflictEdges, eager.conflictEdges);
    EXPECT_EQ(stream.races, eager.races);
    EXPECT_EQ(stream.racyLines, eager.racyLines);
    EXPECT_EQ(stream.totalEdges, eager.totalEdges);
    EXPECT_EQ(stream.reducedEdges, eager.reducedEdges);
}

TEST(StreamAnalyze, StreamingSupersedesTheCappedLegacyFixpoint)
{
    // radix's conflict cascade needs more than the legacy 64 rounds:
    // at the default cap the eager analyzer must say so, and the
    // streaming single pass must find every race the truncated
    // iteration found plus the ones it left unverified.
    Workload w = makeByName("radix", 4, 1);
    RecordResult rec = recordExact(w);
    RaceReport capped = analyzeSphere(rec.logs);
    ASSERT_TRUE(capped.fixpointCapped);
    EXPECT_EQ(capped.fixpointRounds, 64u);
    EXPECT_NE(capped.str().find("warning: race fixpoint"),
              std::string::npos);

    std::vector<std::uint8_t> bytes = rec.logs.serialize();
    SphereCursor cur{PayloadView(bytes)};
    RaceReport stream = analyzeSphereStreaming(cur);
    EXPECT_FALSE(stream.fixpointCapped);
    EXPECT_GT(stream.races.size(), capped.races.size());
    for (const ConflictEdge &e : capped.races)
        EXPECT_TRUE(std::find(stream.races.begin(), stream.races.end(),
                              e) != stream.races.end())
            << "capped race " << e.from << "->" << e.to
            << " missing from the exact fixpoint";
}

#ifdef QR_CORPUS_DIR

std::string
corpusPath(const char *name)
{
    return std::string(QR_CORPUS_DIR) + "/" + name;
}

TEST(StreamAnalyze, SalvagedCorpusSpheresAnalyzeIdentically)
{
    // Salvaged spheres are re-serialized (salvage repairs the framing)
    // and then analyzed both ways; the prefix logs are real recorded
    // data from makeRacyCounter, shadows dropped by the salvage.
    for (const char *name : {"torn_tail.qrs", "intact.qrs"}) {
        SphereRecoverResult salvage = recoverSphere(corpusPath(name));
        ASSERT_TRUE(salvage.ok) << name << ": " << salvage.error;
        expectStreamingIdentical(salvage.logs, name);
    }
}

#endif // QR_CORPUS_DIR

} // namespace
} // namespace qr
