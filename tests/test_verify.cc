/**
 * @file
 * Tests of the sphere artifact linter (analyze/verify.hh): every file
 * in the checked-in corruption corpus must map to its specific QRVnnn
 * diagnostic, the semantic invariants must fire on hand-corrupted
 * spheres and stay silent on healthy recordings, and the SARIF
 * rendering must carry the full rule table.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/verify.hh"
#include "capo/sphere.hh"
#include "core/session.hh"
#include "rnr/chunk_record.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

#ifndef QR_CORPUS_DIR
#error "QR_CORPUS_DIR must point at tests/corpus"
#endif

namespace qr
{
namespace
{

std::string
corpusPath(const char *name)
{
    return std::string(QR_CORPUS_DIR) + "/" + name;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> raw(
        size > 0 ? static_cast<std::size_t>(size) : 0);
    if (std::fread(raw.data(), 1, raw.size(), f) != raw.size())
        raw.clear();
    std::fclose(f);
    return raw;
}

LintReport
lintCorpus(const char *name)
{
    return lintSphereBytes(readFile(corpusPath(name)), name);
}

bool
hasCode(const LintReport &rep, const char *code)
{
    for (const LintFinding &f : rep.findings)
        if (f.code == code)
            return true;
    return false;
}

/** A real, healthy exact-shadow recording to mutate per test. */
SphereLogs
healthySphere()
{
    Workload w = makeMaskedRaceDemo(2, 20, /*elide_lock=*/false);
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = true;
    return recordProgram(w.program, {}, rcfg).logs;
}

LintReport
lintLogs(const SphereLogs &logs)
{
    return lintSphereBytes(logs.serialize(), "synthetic");
}

// --- checked-in corpus: one distinct diagnostic per corruption ----------

TEST(Verify, IntactCorpusFileIsClean)
{
    LintReport rep = lintCorpus("intact.qrs");
    EXPECT_TRUE(rep.clean()) << rep.str();
    EXPECT_TRUE(rep.container);
    EXPECT_TRUE(rep.sealed);
    EXPECT_TRUE(rep.parsed);
    EXPECT_EQ(rep.threads, 4u);
    EXPECT_GT(rep.chunks, 0u);
    EXPECT_NE(rep.str().find("clean:"), std::string::npos);
}

TEST(Verify, TornTailIsQRV003)
{
    LintReport rep = lintCorpus("torn_tail.qrs");
    EXPECT_TRUE(hasCode(rep, "QRV003")) << rep.str();
    EXPECT_FALSE(hasCode(rep, "QRV004"));
    EXPECT_EQ(rep.errors(), 1u);
}

TEST(Verify, TruncatedMidstreamIsQRV004)
{
    LintReport rep = lintCorpus("truncated_midseg.qrs");
    EXPECT_TRUE(hasCode(rep, "QRV004")) << rep.str();
    EXPECT_FALSE(hasCode(rep, "QRV003"));
}

TEST(Verify, BadSegmentIsQRV005)
{
    LintReport rep = lintCorpus("bad_segment.qrs");
    EXPECT_TRUE(hasCode(rep, "QRV005")) << rep.str();
    // The checksum also loses data: the tail classification rides
    // along and says how much.
    EXPECT_TRUE(hasCode(rep, "QRV003") || hasCode(rep, "QRV004"));
}

TEST(Verify, BadTrailerIsQRV006)
{
    LintReport rep = lintCorpus("bad_trailer.qrs");
    EXPECT_TRUE(hasCode(rep, "QRV006")) << rep.str();
    EXPECT_EQ(rep.errors(), 1u);
}

TEST(Verify, DuplicatedSegmentIsQRV007)
{
    LintReport rep = lintCorpus("dup_segment.qrs");
    EXPECT_TRUE(hasCode(rep, "QRV007")) << rep.str();
}

TEST(Verify, EmptyFileIsQRV001)
{
    LintReport rep = lintCorpus("empty.qrs");
    EXPECT_TRUE(hasCode(rep, "QRV001")) << rep.str();
    EXPECT_FALSE(rep.parsed);
}

TEST(Verify, GarbageBytesAreQRV002)
{
    std::vector<std::uint8_t> junk = {'n', 'o', 'p', 'e', 0, 1, 2};
    LintReport rep = lintSphereBytes(junk, "junk");
    EXPECT_TRUE(hasCode(rep, "QRV002")) << rep.str();
}

// --- semantic invariants on well-formed spheres -------------------------

TEST(Verify, HealthyRecordingIsClean)
{
    LintReport rep = lintLogs(healthySphere());
    EXPECT_TRUE(rep.clean()) << rep.str();
    EXPECT_FALSE(rep.container); // raw stream, not a QSG1 file
}

TEST(Verify, DanglingSyncPartnerIsQRV010)
{
    SphereLogs logs = healthySphere();
    logs.threads.begin()->second.syncs.push_back(
        SyncPoint{0, static_cast<Tid>(99), 1});
    LintReport rep = lintLogs(logs);
    EXPECT_TRUE(hasCode(rep, "QRV010")) << rep.str();
    EXPECT_EQ(rep.errors(), 0u);
    EXPECT_GE(rep.warnings(), 1u);
}

TEST(Verify, ShadowlessExactMetaIsQRV011)
{
    SphereLogs logs = healthySphere();
    ASSERT_TRUE(logs.meta.exactShadow);
    for (auto &[tid, tl] : logs.threads)
        tl.shadows.clear();
    LintReport rep = lintLogs(logs);
    EXPECT_TRUE(hasCode(rep, "QRV011")) << rep.str();
}

TEST(Verify, GapChunkWithShadowDataIsQRV012)
{
    SphereLogs logs = healthySphere();
    auto &tl = logs.threads.begin()->second;
    ASSERT_FALSE(tl.chunks.empty());
    ASSERT_EQ(tl.shadows.size(), tl.chunks.size());
    // Find a chunk that actually recorded accesses and call it a gap.
    for (std::size_t i = 0; i < tl.chunks.size(); ++i) {
        if (!tl.shadows[i].writes.empty() ||
            !tl.shadows[i].reads.empty()) {
            tl.chunks[i].reason = ChunkReason::Gap;
            break;
        }
    }
    LintReport rep = lintLogs(logs);
    EXPECT_TRUE(hasCode(rep, "QRV012")) << rep.str();
}

TEST(Verify, ImplausibleClockFloorIsQRV013)
{
    SphereLogs logs = healthySphere();
    auto it = logs.threads.begin();
    Tid partner = std::next(it)->first;
    it->second.syncs.push_back(SyncPoint{0, partner, 1u << 30});
    LintReport rep = lintLogs(logs);
    EXPECT_TRUE(hasCode(rep, "QRV013")) << rep.str();
}

TEST(Verify, InvertedSyncEdgeIsQRV014)
{
    SphereLogs logs = healthySphere();
    auto it = logs.threads.begin();
    auto &tl = it->second;
    Tid partner = std::next(it)->first;
    const auto &pch = logs.threads.at(partner).chunks;
    ASSERT_FALSE(pch.empty());
    ASSERT_FALSE(tl.chunks.empty());
    // Claim chunk 0 was woken by the partner with every partner chunk
    // below the floor: the resolved source is the partner's last
    // chunk, which certainly does not precede our first.
    tl.syncs.push_back(SyncPoint{0, partner, pch.back().ts + 1});
    LintReport rep = lintLogs(logs);
    EXPECT_TRUE(hasCode(rep, "QRV014")) << rep.str();
}

TEST(Verify, ShadowLineBeyondGuestMemoryIsQRV015)
{
    SphereLogs logs = healthySphere();
    ASSERT_GT(logs.memBytes, 0u);
    auto &tl = logs.threads.begin()->second;
    ASSERT_FALSE(tl.shadows.empty());
    tl.shadows.front().writes.push_back(logs.memBytes + 0x1000);
    LintReport rep = lintLogs(logs);
    EXPECT_TRUE(hasCode(rep, "QRV015")) << rep.str();
}

TEST(Verify, ImplausibleGeometryIsQRV016)
{
    SphereLogs logs = healthySphere();
    // Both values parse (the stream layer accepts them) but sit in
    // the no-honest-recording band the linter owns: a 4-byte "line"
    // and a 12-hash Bloom filter.
    logs.meta.lineBytes = 4;
    logs.meta.bloomHashes = 12;
    LintReport rep = lintLogs(logs);
    EXPECT_TRUE(hasCode(rep, "QRV016")) << rep.str();
    // Two independent geometry violations, two findings.
    std::uint64_t n = 0;
    for (const LintFinding &f : rep.findings)
        if (f.code == "QRV016")
            n++;
    EXPECT_EQ(n, 2u);
}

TEST(Verify, NonMonotonicTimestampsAreQRV008)
{
    // serialize() itself asserts strict monotonicity, so the tie has
    // to be forged in the bytes: bump the last chunk's timestamp by
    // one, diff the two serializations to locate its delta varint,
    // and zero it in the healthy copy -- a zero delta is exactly the
    // corruption the stream layer must flag.
    SphereLogs logs = healthySphere();
    std::vector<std::uint8_t> healthy = logs.serialize();
    logs.threads.rbegin()->second.chunks.back().ts += 1;
    std::vector<std::uint8_t> bumped = logs.serialize();
    ASSERT_EQ(healthy.size(), bumped.size());
    std::size_t diffs = 0, off = 0;
    for (std::size_t i = 0; i < healthy.size(); ++i)
        if (healthy[i] != bumped[i])
            diffs++, off = i;
    ASSERT_EQ(diffs, 1u) << "delta varint was not single-byte";
    healthy[off] = 0;
    LintReport rep = lintSphereBytes(healthy, "tie");
    EXPECT_TRUE(hasCode(rep, "QRV008")) << rep.str();
}

TEST(Verify, TruncatedRawStreamIsQRV009)
{
    std::vector<std::uint8_t> bytes = healthySphere().serialize();
    bytes.resize(bytes.size() / 2); // mid-stream cut, no container
    LintReport rep = lintSphereBytes(bytes, "cut");
    // Some prefix of the first thread log still parses; the failure
    // is a malformed stream, not a container tear.
    EXPECT_TRUE(hasCode(rep, "QRV009") || hasCode(rep, "QRV002"))
        << rep.str();
    EXPECT_FALSE(rep.container);
}

// --- SARIF rendering ----------------------------------------------------

TEST(Verify, SarifCarriesRulesResultsAndArtifacts)
{
    std::vector<LintReport> reports = {lintCorpus("torn_tail.qrs"),
                                       lintCorpus("intact.qrs")};
    std::string s = lintSarif(reports);
    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"qrec-verify\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\": \"QRV003\""), std::string::npos);
    // The full rule table rides along even for clean runs.
    for (const LintRule &r : lintRules())
        EXPECT_NE(s.find(csprintf("\"id\": \"%s\"", r.code)),
                  std::string::npos)
            << r.code;
    // Balanced braces/brackets: cheap structural sanity.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_EQ(std::count(s.begin(), s.end(), '['),
              std::count(s.begin(), s.end(), ']'));
}

TEST(Verify, SarifEscapesMessageText)
{
    LintReport rep;
    rep.uri = "weird\"name";
    rep.findings.push_back(
        {"QRV009", LintSeverity::Error, "line1\nline\"2", invalidTid});
    std::string s = lintSarif({rep});
    EXPECT_NE(s.find("weird\\\"name"), std::string::npos);
    EXPECT_NE(s.find("line1\\nline\\\"2"), std::string::npos);
}

TEST(Verify, RuleTableIsSortedAndComplete)
{
    const std::vector<LintRule> &rules = lintRules();
    ASSERT_EQ(rules.size(), 18u);
    for (std::size_t i = 1; i < rules.size(); ++i)
        EXPECT_LT(std::string(rules[i - 1].code), rules[i].code);
}

} // namespace
} // namespace qr
