/**
 * @file
 * Differential proof that the record-path hot-loop optimizations do
 * not change what gets recorded. The last-line coalescing caches
 * (RnrParams::coalesce) are the only optimization with an unoptimized
 * twin still in the tree, so recording every suite workload with
 * coalescing on and off and comparing the complete serialized sphere
 * (chunk counts, sizes, timestamps, termination reasons, RSW, input
 * log) plus the architectural digests checks the whole chain: if the
 * caches ever skipped a Bloom insert that mattered, a chunk would
 * terminate at a different instruction and the streams would diverge.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "workloads/workload.hh"

namespace
{

using namespace qr;

RecorderConfig
recorder(bool coalesce)
{
    RecorderConfig rcfg;
    rcfg.rnr.coalesce = coalesce;
    return rcfg;
}

class RecordDifferential
    : public ::testing::TestWithParam<const WorkloadSpec *>
{
};

TEST_P(RecordDifferential, CoalescedRecordingIsBitIdentical)
{
    Workload w = GetParam()->make(4, 1);

    RecordResult fast = recordProgram(w.program, {}, recorder(true));
    RecordResult ref = recordProgram(w.program, {}, recorder(false));

    // The full serialized sphere: every chunk's size, timestamp,
    // termination reason, and RSW count, plus the input log.
    EXPECT_EQ(fast.logs.serialize(), ref.logs.serialize()) << w.name;
    EXPECT_EQ(fast.logs, ref.logs) << w.name;

    // Same architectural outcome and same hardware event counts.
    EXPECT_EQ(fast.metrics.digests, ref.metrics.digests) << w.name;
    EXPECT_EQ(fast.metrics.chunks, ref.metrics.chunks) << w.name;
    EXPECT_EQ(fast.metrics.cycles, ref.metrics.cycles) << w.name;
    for (int r = 0; r < numChunkReasons; ++r)
        EXPECT_EQ(fast.metrics.reasonCounts[r], ref.metrics.reasonCounts[r])
            << w.name << " reason " << r;

    // The comparison is only meaningful if the fast path actually ran.
    EXPECT_GT(fast.metrics.coalescedAccesses, 0u) << w.name;
    EXPECT_EQ(ref.metrics.coalescedAccesses, 0u) << w.name;

    // And the optimized recording must still replay deterministically.
    ReplayResult rep = replaySphere(w.program, fast.logs);
    ASSERT_TRUE(rep.ok) << w.name;
    EXPECT_TRUE(verifyDigests(fast.metrics.digests, rep.digests).ok)
        << w.name;
}

std::vector<const WorkloadSpec *>
suitePointers()
{
    std::vector<const WorkloadSpec *> out;
    for (const auto &spec : splash2Suite())
        out.push_back(&spec);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Splash2, RecordDifferential, ::testing::ValuesIn(suitePointers()),
    [](const ::testing::TestParamInfo<const WorkloadSpec *> &info) {
        std::string name = info.param->name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
