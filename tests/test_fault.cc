/**
 * @file
 * Tests for the fault-injection subsystem and degraded operation:
 * spec parsing, per-site determinism, the zero-fault differential
 * (an armed-but-silent plan must leave the record path bit-identical),
 * fault determinism (same seed + spec => same degraded sphere), gap
 * markers, crash-consistent persistence, salvage, and the degraded
 * replay summary's equality across sequential and parallel engines.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>

#include "capo/log_store.hh"
#include "core/session.hh"
#include "fault/fault_plan.hh"
#include "sim/logging.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace
{

using namespace qr;

// --- FaultPlan spec parsing and determinism -----------------------------

TEST(FaultPlan, EmptySpecIsDisarmed)
{
    FaultPlan p = FaultPlan::parse("", 1);
    EXPECT_FALSE(p.enabled());
    for (int s = 0; s < numFaultSites; ++s) {
        EXPECT_FALSE(p.armed(static_cast<FaultSite>(s)));
        EXPECT_FALSE(p.fire(static_cast<FaultSite>(s)));
    }
}

TEST(FaultPlan, ParsesEverySiteAndTrigger)
{
    FaultPlan p = FaultPlan::parse(
        "cbuf-drop@0.01,cbuf-delay@1.0,drain-fail@0,"
        "io-short@0.001,io-torn@tick:7,io-enospc@tick:500000,"
        "dev-drop@0.1,dev-torn@0.1,dev-late@0.1", 42);
    EXPECT_TRUE(p.enabled());
    for (int s = 0; s < numFaultSites; ++s)
        EXPECT_TRUE(p.armed(static_cast<FaultSite>(s)))
            << faultSiteName(static_cast<FaultSite>(s));
    EXPECT_EQ(p.seed(), 42u);
    EXPECT_NE(p.spec().find("io-torn@tick:7"), std::string::npos);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"bogus@0.5", "cbuf-drop", "cbuf-drop@", "cbuf-drop@1.5",
          "cbuf-drop@-0.1", "cbuf-drop@zzz", "io-torn@tick:",
          "io-torn@tick:abc", "cbuf-drop@0.5,cbuf-drop@0.5", ",",
          "cbuf-drop@0.5,,io-torn@0.5"})
        EXPECT_THROW(FaultPlan::parse(bad, 1), ParseError) << bad;
}

TEST(FaultPlan, ProbabilityOneAlwaysFiresProbabilityZeroNever)
{
    FaultPlan p = FaultPlan::parse("cbuf-drop@1.0,io-torn@0.0", 3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(p.fire(FaultSite::CbufDrop));
        EXPECT_FALSE(p.fire(FaultSite::IoTorn));
    }
    EXPECT_EQ(p.stats().fires[static_cast<int>(FaultSite::CbufDrop)],
              100u);
    EXPECT_EQ(p.stats().queries[static_cast<int>(FaultSite::IoTorn)],
              100u);
    EXPECT_EQ(p.stats().fires[static_cast<int>(FaultSite::IoTorn)], 0u);
}

TEST(FaultPlan, TickModeFiresPersistentlyFromTickOn)
{
    FaultPlan p = FaultPlan::parse("io-enospc@tick:5", 1);
    for (int q = 0; q < 12; ++q)
        EXPECT_EQ(p.fire(FaultSite::IoEnospc), q >= 5) << q;
}

TEST(FaultPlan, SameSeedSameSpecSameFireStream)
{
    const std::string spec = "cbuf-drop@0.3,io-short@0.7";
    FaultPlan a = FaultPlan::parse(spec, 99);
    FaultPlan b = FaultPlan::parse(spec, 99);
    int fires = 0;
    for (int i = 0; i < 2000; ++i) {
        bool fa = a.fire(FaultSite::CbufDrop);
        EXPECT_EQ(fa, b.fire(FaultSite::CbufDrop));
        EXPECT_EQ(a.fire(FaultSite::IoShort), b.fire(FaultSite::IoShort));
        EXPECT_EQ(a.draw(FaultSite::IoShort, 1000),
                  b.draw(FaultSite::IoShort, 1000));
        fires += fa ? 1 : 0;
    }
    // ~600 expected; the stream is random, not degenerate.
    EXPECT_GT(fires, 400);
    EXPECT_LT(fires, 800);
}

TEST(FaultPlan, SitesDrawFromIndependentStreams)
{
    // Consuming one site's stream must not shift another's: the
    // recorder and the I/O layer can hold separate plan copies and
    // still agree per site.
    FaultPlan a = FaultPlan::parse("cbuf-drop@0.5,io-torn@0.5", 7);
    FaultPlan b = FaultPlan::parse("cbuf-drop@0.5,io-torn@0.5", 7);
    for (int i = 0; i < 500; ++i)
        a.fire(FaultSite::CbufDrop); // burn one stream in a only
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.fire(FaultSite::IoTorn), b.fire(FaultSite::IoTorn));
}

// --- zero-fault differential across the suite ---------------------------

RecorderConfig
faultRecorder(const std::string &spec, std::uint64_t seed = 1,
              std::uint32_t cbufEntries = 0)
{
    RecorderConfig rcfg;
    rcfg.faults.spec = spec;
    rcfg.faults.seed = seed;
    if (cbufEntries)
        rcfg.cbuf.entries = cbufEntries;
    return rcfg;
}

class ZeroFaultDifferential
    : public ::testing::TestWithParam<const WorkloadSpec *>
{
};

TEST_P(ZeroFaultDifferential, ArmedButSilentPlanIsBitIdentical)
{
    Workload w = GetParam()->make(4, 1);

    // Reference: no fault plan at all (today's record path).
    RecordResult ref = recordProgram(w.program);
    // Every recording site armed at probability zero: all the hooks
    // execute, none fires. Anything they perturb shows up here.
    RecordResult silent = recordProgram(
        w.program, {},
        faultRecorder("cbuf-drop@0.0,cbuf-delay@0.0,drain-fail@0.0"));

    EXPECT_EQ(silent.logs.serialize(), ref.logs.serialize()) << w.name;
    EXPECT_EQ(silent.metrics.digests, ref.metrics.digests) << w.name;
    EXPECT_EQ(silent.metrics.cycles, ref.metrics.cycles) << w.name;
    EXPECT_EQ(silent.metrics.chunks, ref.metrics.chunks) << w.name;
    EXPECT_EQ(silent.metrics.droppedChunks, 0u) << w.name;
    EXPECT_EQ(silent.metrics.gapChunks, 0u) << w.name;
    EXPECT_EQ(silent.metrics.lostCbufSignals, 0u) << w.name;
    EXPECT_EQ(silent.metrics.cbufDrainRetries, 0u) << w.name;
    EXPECT_EQ(silent.metrics.delayedCbufSignals, 0u) << w.name;
}

std::vector<const WorkloadSpec *>
suitePointers()
{
    std::vector<const WorkloadSpec *> out;
    for (const auto &spec : splash2Suite())
        out.push_back(&spec);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Splash2, ZeroFaultDifferential, ::testing::ValuesIn(suitePointers()),
    [](const ::testing::TestParamInfo<const WorkloadSpec *> &info) {
        std::string name = info.param->name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// --- degraded recording: gaps, determinism, degraded replay -------------

/** A gap-heavy recording: tiny CBUF, most drain signals lost. */
RecordResult
recordWithGaps(const Workload &w, std::uint64_t seed)
{
    return recordProgram(w.program, {},
                         faultRecorder("cbuf-drop@0.9", seed, 64));
}

std::uint64_t
countGapChunks(const SphereLogs &logs)
{
    std::uint64_t gaps = 0;
    for (const auto &[tid, tlogs] : logs.threads)
        for (const auto &rec : tlogs.chunks)
            gaps += rec.reason == ChunkReason::Gap ? 1 : 0;
    return gaps;
}

TEST(FaultRecording, DropsAreWitnessedByGapMarkers)
{
    Workload w = makeRacyCounter(4, 1000, false);
    RecordResult rec = recordWithGaps(w, 7);
    EXPECT_GT(rec.metrics.droppedChunks, 0u);
    EXPECT_GT(rec.metrics.gapChunks, 0u);
    EXPECT_GT(rec.metrics.lostCbufSignals, 0u);
    EXPECT_EQ(countGapChunks(rec.logs), rec.metrics.gapChunks);
    // The degraded sphere still round-trips its serialization.
    EXPECT_EQ(SphereLogs::deserialize(rec.logs.serialize()), rec.logs);
}

TEST(FaultRecording, SameSeedAndSpecSameDegradedSphere)
{
    Workload w = makeRacyCounter(4, 1000, false);
    RecordResult a = recordWithGaps(w, 11);
    RecordResult b = recordWithGaps(w, 11);
    EXPECT_EQ(a.logs.serialize(), b.logs.serialize());
    EXPECT_EQ(a.metrics.digests, b.metrics.digests);
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
    EXPECT_EQ(a.metrics.droppedChunks, b.metrics.droppedChunks);
    EXPECT_EQ(a.metrics.gapChunks, b.metrics.gapChunks);
}

TEST(FaultRecording, RsmSitesCostCyclesButLoseNothing)
{
    Workload w = makeProdCons(4, 60);
    RecordResult ref = recordProgram(w.program);
    RecordResult faulty = recordProgram(
        w.program, {}, faultRecorder("drain-fail@0.8,cbuf-delay@0.9"));
    EXPECT_GT(faulty.metrics.cbufDrainRetries +
                  faulty.metrics.delayedCbufSignals, 0u);
    EXPECT_EQ(faulty.metrics.droppedChunks, 0u);
    EXPECT_EQ(faulty.metrics.gapChunks, 0u);
    // Retries and stalls are pure cost: the recording still replays
    // deterministically against its own digests.
    ReplayResult rep = replaySphere(w.program, faulty.logs);
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(verifyDigests(faulty.metrics.digests, rep.digests).ok);
    (void)ref;
}

TEST(DegradedReplay, StrictRefusesGapsDegradedContainsThem)
{
    Workload w = makeRacyCounter(4, 1000, false);
    RecordResult rec = recordWithGaps(w, 7);
    ASSERT_GT(rec.metrics.gapChunks, 0u);

    ReplayResult strict = replaySphere(w.program, rec.logs);
    EXPECT_FALSE(strict.ok);
    EXPECT_NE(strict.divergence.find("gap marker"), std::string::npos)
        << strict.divergence;

    ReplayResult deg =
        replaySphere(w.program, rec.logs, ReplayMode::Degraded);
    ASSERT_TRUE(deg.ok);
    EXPECT_TRUE(deg.degradedMode);
    EXPECT_EQ(deg.degraded.gapChunks, rec.metrics.gapChunks);
    EXPECT_GT(deg.degraded.chunksSkipped, 0u);
    EXPECT_GT(deg.degraded.threadsIncomplete, 0u);
    EXPECT_GT(deg.degraded.chunksReplayed, 0u);
}

TEST(DegradedReplay, SequentialAndParallelAgreeAtEveryJobCount)
{
    Workload w = makeRacyCounter(4, 1000, false);
    RecordResult rec = recordWithGaps(w, 7);
    ASSERT_GT(rec.metrics.gapChunks, 0u);

    ReplayResult seq =
        replaySphere(w.program, rec.logs, ReplayMode::Degraded);
    ASSERT_TRUE(seq.ok);
    for (int jobs : {1, 4}) {
        ParallelReplayResult par = replaySphereParallel(
            w.program, rec.logs, jobs, ReplayMode::Degraded);
        ASSERT_TRUE(par.replay.ok) << jobs;
        EXPECT_EQ(par.replay.digests, seq.digests) << jobs;
        EXPECT_EQ(par.replay.degraded.summary(),
                  seq.degraded.summary()) << jobs;
    }
}

TEST(DegradedReplay, CleanSphereDegradedEqualsStrict)
{
    // Degraded mode on a fault-free sphere is a no-op: identical
    // digests, empty degradation summary.
    Workload w = makeNondetMix(2, 60);
    RecordResult rec = recordProgram(w.program);
    ReplayResult strict = replaySphere(w.program, rec.logs);
    ReplayResult deg =
        replaySphere(w.program, rec.logs, ReplayMode::Degraded);
    ASSERT_TRUE(strict.ok);
    ASSERT_TRUE(deg.ok);
    EXPECT_EQ(deg.digests, strict.digests);
    EXPECT_EQ(deg.degraded.gapChunks, 0u);
    EXPECT_EQ(deg.degraded.chunksSkipped, 0u);
    EXPECT_EQ(deg.degraded.divergences, 0u);
    EXPECT_EQ(deg.degraded.threadsIncomplete, 0u);
    EXPECT_EQ(deg.degraded.chunksReplayed, strict.replayedChunks);
}

// --- injected I/O faults and salvage ------------------------------------

TEST(FaultIo, EnospcLeavesTheOldArtifactIntact)
{
    Workload w = makeRacyCounter(2, 200, false);
    RecordResult rec = recordProgram(w.program);
    const std::string path = "/tmp/qr_fault_enospc.qrs";

    ASSERT_TRUE(saveSphere(rec.logs, path));
    FaultPlan io = FaultPlan::parse("io-enospc@tick:0", 5);
    SphereSaveResult res = saveSphere(rec.logs, path, &io);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.injected);
    // The old sealed artifact survives the failed overwrite.
    SphereLoadResult back = loadSphere(path);
    ASSERT_TRUE(back) << back.error;
    EXPECT_EQ(back.logs, rec.logs);
    std::remove(path.c_str());
}

class FaultIoTear : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FaultIoTear, TornWritesSalvageToADegradedReplay)
{
    // Big enough that the sphere spans several segments: a short or
    // torn write can then only damage the tail, never the whole file.
    Workload w = makeRacyCounter(4, 1000, false);
    RecordResult rec = recordProgram(w.program);
    const std::string path = "/tmp/qr_fault_torn.qrs";

    FaultPlan io = FaultPlan::parse(GetParam(), 5);
    SphereSaveResult res = saveSphere(rec.logs, path, &io);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.injected);
    EXPECT_GT(res.bytes, 0u);

    // loadSphere refuses the torn file with a recoverable error...
    SphereLoadResult strict = loadSphere(path);
    EXPECT_FALSE(strict.ok);
    EXPECT_NE(strict.error.find("recover"), std::string::npos)
        << strict.error;

    // ...and recoverSphere salvages every sealed segment before the
    // tear into something the degraded replayer completes.
    SphereRecoverResult rcv = recoverSphere(path);
    ASSERT_TRUE(rcv.ok) << rcv.error;
    EXPECT_FALSE(rcv.complete);
    EXPECT_GT(rcv.segmentsSalvaged, 0u);
    EXPECT_GT(rcv.threadsSalvaged + rcv.threadsPartial, 0u);

    ReplayResult deg =
        replaySphere(w.program, rcv.logs, ReplayMode::Degraded);
    EXPECT_TRUE(deg.ok);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Shapes, FaultIoTear,
                         ::testing::Values("io-short@tick:0",
                                           "io-torn@tick:0"));

TEST(FaultIo, TornWritesAreDeterministic)
{
    Workload w = makeRacyCounter(2, 200, false);
    RecordResult rec = recordProgram(w.program);
    auto tornBytes = [&](const std::string &path) {
        FaultPlan io = FaultPlan::parse("io-torn@tick:0", 21);
        SphereSaveResult res = saveSphere(rec.logs, path, &io);
        EXPECT_TRUE(res.injected);
        return res.bytes;
    };
    std::uint64_t a = tornBytes("/tmp/qr_fault_det_a.qrs");
    std::uint64_t b = tornBytes("/tmp/qr_fault_det_b.qrs");
    EXPECT_EQ(a, b);
    SphereRecoverResult ra = recoverSphere("/tmp/qr_fault_det_a.qrs");
    SphereRecoverResult rb = recoverSphere("/tmp/qr_fault_det_b.qrs");
    ASSERT_TRUE(ra.ok);
    ASSERT_TRUE(rb.ok);
    EXPECT_EQ(ra.logs, rb.logs);
    std::remove("/tmp/qr_fault_det_a.qrs");
    std::remove("/tmp/qr_fault_det_b.qrs");
}

TEST(FaultIo, RecoveringAnIntactFileIsComplete)
{
    Workload w = makeRacyCounter(2, 200, false);
    RecordResult rec = recordProgram(w.program);
    const std::string path = "/tmp/qr_fault_intact.qrs";
    ASSERT_TRUE(saveSphere(rec.logs, path));
    SphereRecoverResult rcv = recoverSphere(path);
    ASSERT_TRUE(rcv.ok) << rcv.error;
    EXPECT_TRUE(rcv.complete);
    EXPECT_EQ(rcv.logs, rec.logs);
    EXPECT_EQ(rcv.threadsPartial, 0u);
    std::remove(path.c_str());
}

} // namespace
