/**
 * @file
 * Unit tests for the memory system: functional memory, MESI state
 * transitions on the snooping bus, bus contention, and the Lamport
 * piggybacking path the recorder depends on.
 */

#include <gtest/gtest.h>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"

namespace qr
{
namespace
{

TEST(Memory, ReadWriteAndBounds)
{
    Memory m(4096);
    m.write(0, 0xdead);
    m.write(4092, 0xbeef);
    EXPECT_EQ(m.read(0), 0xdeadu);
    EXPECT_EQ(m.read(4092), 0xbeefu);
    EXPECT_EQ(m.read(8), 0u);
}

TEST(MemoryDeath, MisalignedAndOutOfRange)
{
    Memory m(4096);
    EXPECT_DEATH(m.read(2), "misaligned");
    EXPECT_DEATH(m.write(4096, 1), "past end");
}

TEST(Memory, DigestRespectsLimit)
{
    Memory a(4096), b(4096);
    a.write(100, 7);
    b.write(100, 7);
    EXPECT_EQ(a.digest(4096), b.digest(4096));
    b.write(2048, 9);
    EXPECT_NE(a.digest(4096), b.digest(4096));
    // Below the divergence point the digests agree.
    EXPECT_EQ(a.digest(2048), b.digest(2048));
}

/** Observer that records transactions and returns a fixed clock. */
class ProbeObserver : public BusObserver
{
  public:
    ProbeObserver(CoreId id, Timestamp clk) : id(id), clk(clk) {}

    Timestamp
    observeRemote(const BusTxn &txn, Tick) override
    {
        seen.push_back(txn);
        return clk;
    }

    CoreId observerId() const override { return id; }

    CoreId id;
    Timestamp clk;
    std::vector<BusTxn> seen;
};

struct MesiRig
{
    MesiRig() : bus(BusParams{}), c0(0, CacheParams{}, bus),
                c1(1, CacheParams{}, bus)
    {
        bus.attachSnooper(&c0);
        bus.attachSnooper(&c1);
    }

    Bus bus;
    L1Cache c0, c1;
};

TEST(Mesi, ColdReadFillsExclusive)
{
    MesiRig rig;
    CacheAccess acc = rig.c0.read(0x1000, 0, 0);
    EXPECT_TRUE(acc.miss);
    EXPECT_TRUE(acc.usedBus);
    EXPECT_EQ(rig.c0.lineState(0x1000), CState::Exclusive);
}

TEST(Mesi, SecondReaderDemotesToShared)
{
    MesiRig rig;
    rig.c0.read(0x1000, 0, 0);
    CacheAccess acc = rig.c1.read(0x1000, 0, 1);
    EXPECT_TRUE(acc.miss);
    EXPECT_EQ(rig.c0.lineState(0x1000), CState::Shared);
    EXPECT_EQ(rig.c1.lineState(0x1000), CState::Shared);
}

TEST(Mesi, SilentExclusiveToModifiedUpgrade)
{
    MesiRig rig;
    rig.c0.read(0x40, 0, 0);
    ASSERT_EQ(rig.c0.lineState(0x40), CState::Exclusive);
    std::uint64_t txnsBefore = rig.bus.stats().txns[0] +
                               rig.bus.stats().txns[1] +
                               rig.bus.stats().txns[2];
    CacheAccess acc = rig.c0.write(0x40, 0, 1);
    EXPECT_FALSE(acc.usedBus);
    EXPECT_EQ(rig.c0.lineState(0x40), CState::Modified);
    std::uint64_t txnsAfter = rig.bus.stats().txns[0] +
                              rig.bus.stats().txns[1] +
                              rig.bus.stats().txns[2];
    EXPECT_EQ(txnsBefore, txnsAfter);
}

TEST(Mesi, SharedWriteUpgradesAndInvalidates)
{
    MesiRig rig;
    rig.c0.read(0x80, 0, 0);
    rig.c1.read(0x80, 0, 1);
    ASSERT_EQ(rig.c0.lineState(0x80), CState::Shared);
    CacheAccess acc = rig.c0.write(0x80, 0, 2);
    EXPECT_TRUE(acc.usedBus);
    EXPECT_EQ(rig.c0.lineState(0x80), CState::Modified);
    EXPECT_EQ(rig.c1.lineState(0x80), CState::Invalid);
    EXPECT_EQ(rig.c1.stats().invalidations, 1u);
}

TEST(Mesi, WriteMissInvalidatesModifiedOwner)
{
    MesiRig rig;
    rig.c0.write(0xc0, 0, 0); // c0: M
    CacheAccess acc = rig.c1.write(0xc0, 0, 1);
    EXPECT_TRUE(acc.miss);
    EXPECT_EQ(rig.c0.lineState(0xc0), CState::Invalid);
    EXPECT_EQ(rig.c1.lineState(0xc0), CState::Modified);
}

TEST(Mesi, RemoteReadOfModifiedSuppliesDirty)
{
    MesiRig rig;
    rig.c0.write(0x100, 0, 0); // c0: M
    CacheAccess acc = rig.c1.read(0x100, 0, 1);
    EXPECT_TRUE(acc.miss);
    // Cache-to-cache supply is faster than memory.
    EXPECT_LT(acc.latency,
              BusParams{}.occupancy + BusParams{}.memLatency);
    EXPECT_EQ(rig.c0.lineState(0x100), CState::Shared);
    EXPECT_EQ(rig.c1.lineState(0x100), CState::Shared);
}

TEST(Mesi, EvictionWritesBackModified)
{
    MesiRig rig;
    CacheParams p;
    // Fill one set beyond its associativity with Modified lines.
    std::uint32_t setStride = p.sets * p.lineBytes;
    for (std::uint32_t i = 0; i <= p.ways; ++i)
        rig.c0.write(0x40 + i * setStride, 0, i);
    EXPECT_EQ(rig.c0.stats().writebacks, 1u);
}

TEST(Mesi, LruVictimSelection)
{
    MesiRig rig;
    CacheParams p;
    std::uint32_t setStride = p.sets * p.lineBytes;
    // Touch ways in order 0..3 at increasing times, then re-touch 0.
    for (std::uint32_t i = 0; i < p.ways; ++i)
        rig.c0.read(0x40 + i * setStride, 0, i);
    rig.c0.read(0x40, 0, 10); // way with tag 0x40 is now MRU
    rig.c0.read(0x40 + p.ways * setStride, 0, 11); // evicts tag +1*stride
    EXPECT_EQ(rig.c0.lineState(0x40), CState::Exclusive);
    EXPECT_EQ(rig.c0.lineState(0x40 + setStride), CState::Invalid);
}

TEST(Bus, ContentionQueuesTransactions)
{
    BusParams bp;
    Bus bus(bp);
    BusTxn txn{BusOp::BusRd, 0x0, 0, 0};
    BusResult first = bus.transact(txn, 100);
    BusResult second = bus.transact(txn, 100); // same cycle: must queue
    EXPECT_EQ(first.latency, bp.occupancy + bp.memLatency);
    EXPECT_EQ(second.latency,
              bp.occupancy + bp.occupancy + bp.memLatency);
    EXPECT_EQ(bus.stats().queueCycles, bp.occupancy);
}

TEST(Bus, ObserversSeeOnlyRemoteTxns)
{
    Bus bus((BusParams()));
    ProbeObserver o0(0, 5), o1(1, 9);
    bus.attachObserver(&o0);
    bus.attachObserver(&o1);
    BusTxn txn{BusOp::BusRdX, 0x40, 0, 77};
    BusResult res = bus.transact(txn, 0);
    EXPECT_TRUE(o0.seen.empty()); // requester's own unit skipped
    ASSERT_EQ(o1.seen.size(), 1u);
    EXPECT_EQ(o1.seen[0].reqTs, 77u);
    EXPECT_EQ(res.maxObserverTs, 9u); // max over remote observers
}

TEST(Bus, LogWritesChargeBandwidth)
{
    BusParams bp;
    Bus bus(bp);
    EXPECT_EQ(bus.occupyForLog(0, 2), 0u);
    // Second append at the same tick queues behind the first.
    EXPECT_EQ(bus.occupyForLog(0, 2), 2u);
    EXPECT_EQ(bus.stats().cbufWrites, 2u);
}

} // namespace
} // namespace qr
