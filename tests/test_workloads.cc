/**
 * @file
 * Workload-level tests. The data-race-free workloads (barrier/lock
 * disciplined) must produce schedule-independent results -- their
 * output digest cannot change with the timeslice or core count. All
 * workloads must scale with the `scale` knob and run under any thread
 * count that divides their problem.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/session.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

std::uint64_t
outputDigestAt(const Workload &w, Tick timeslice, int cores)
{
    MachineConfig mcfg;
    mcfg.numCores = cores;
    mcfg.core.timeslice = timeslice;
    RunMetrics m = runBaseline(w.program, mcfg);
    return m.digests.output;
}

/**
 * Deterministic-by-construction workloads: every inter-thread
 * communication is ordered by barriers, locks, or dataflow, so the
 * final answer is schedule independent.
 */
class DrfWorkloads : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DrfWorkloads, ResultIsScheduleIndependent)
{
    // Rebuild the workload per run: Program is consumed by value.
    auto make = [&] { return makeByName(GetParam(), 4, 1); };
    std::uint64_t ref = outputDigestAt(make(), 20000, 4);
    EXPECT_EQ(outputDigestAt(make(), 3000, 4), ref) << "timeslice 3000";
    EXPECT_EQ(outputDigestAt(make(), 7777, 4), ref) << "timeslice 7777";
    EXPECT_EQ(outputDigestAt(make(), 5000, 2), ref) << "2 cores";
}

INSTANTIATE_TEST_SUITE_P(Suite, DrfWorkloads,
                         ::testing::Values("fft", "lu", "ocean",
                                           "water-nsq", "cholesky"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

class AllWorkloads : public ::testing::TestWithParam<WorkloadSpec>
{
};

TEST_P(AllWorkloads, ScaleGrowsTheProblem)
{
    Workload small = GetParam().make(4, 1);
    Workload big = GetParam().make(4, 3);
    RunMetrics ms = runBaseline(small.program);
    RunMetrics mb = runBaseline(big.program);
    EXPECT_GT(mb.instrs, ms.instrs) << GetParam().name;
}

TEST_P(AllWorkloads, RunsWithTwoThreads)
{
    Workload w = GetParam().make(2, 1);
    RunMetrics m = runBaseline(w.program);
    EXPECT_EQ(m.digests.exits.size(), 2u) << GetParam().name;
}

TEST_P(AllWorkloads, EveryThreadExitsCleanly)
{
    Workload w = GetParam().make(4, 1);
    RunMetrics m = runBaseline(w.program);
    EXPECT_EQ(m.digests.exits.size(), 4u) << GetParam().name;
    for (const auto &[tid, info] : m.digests.exits)
        EXPECT_EQ(info.exitCode, 0u)
            << GetParam().name << " tid " << tid;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllWorkloads, ::testing::ValuesIn(splash2Suite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

INSTANTIATE_TEST_SUITE_P(
    Extended, AllWorkloads, ::testing::ValuesIn(extendedSuite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        return info.param.name;
    });

TEST(MicroWorkloads, LockedCounterIsAlwaysExact)
{
    for (Tick slice : {2000u, 6000u, 20000u}) {
        Workload w = makeRacyCounter(4, 400, true);
        MachineConfig mcfg;
        mcfg.core.timeslice = slice;
        Machine machine(mcfg, RecorderConfig{}, w.program, false);
        machine.run();
        const auto &out = machine.outputs().at(1);
        Word counter = 0;
        for (int b = 0; b < 4; ++b)
            counter |= static_cast<Word>(out[static_cast<std::size_t>(b)])
                       << (8 * b);
        EXPECT_EQ(counter, 1600u) << "timeslice " << slice;
    }
}

TEST(MicroWorkloads, RacyCounterActuallyLosesUpdates)
{
    // The racy variant exists to be nondeterministic; under at least
    // one schedule it must actually lose an update (otherwise it
    // would not stress the recorder).
    bool lost = false;
    for (Tick slice : {1500u, 2500u, 4000u, 9000u}) {
        Workload w = makeRacyCounter(4, 400, false);
        MachineConfig mcfg;
        mcfg.core.timeslice = slice;
        Machine machine(mcfg, RecorderConfig{}, w.program, false);
        machine.run();
        const auto &out = machine.outputs().at(1);
        Word counter = 0;
        for (int b = 0; b < 4; ++b)
            counter |= static_cast<Word>(out[static_cast<std::size_t>(b)])
                       << (8 * b);
        lost |= counter != 1600u;
    }
    EXPECT_TRUE(lost);
}

TEST(MicroWorkloads, PingPongBatsExactly)
{
    Workload w = makePingPong(250);
    Machine machine(MachineConfig{}, RecorderConfig{}, w.program,
                    false);
    machine.run();
    const auto &out = machine.outputs().at(1);
    Word ball = 0;
    for (int b = 0; b < 4; ++b)
        ball |= static_cast<Word>(out[static_cast<std::size_t>(b)])
                << (8 * b);
    EXPECT_EQ(ball, 500u); // both sides bat 250 times
}

TEST(MicroWorkloads, ProdConsConservesItems)
{
    // checksum = producers * sum(1..items), independent of schedule
    for (Tick slice : {3000u, 15000u}) {
        Workload w = makeProdCons(4, 60);
        MachineConfig mcfg;
        mcfg.core.timeslice = slice;
        Machine machine(mcfg, RecorderConfig{}, w.program, false);
        machine.run();
        const auto &out = machine.outputs().at(1);
        Word sum = 0;
        for (int b = 0; b < 4; ++b)
            sum |= static_cast<Word>(out[static_cast<std::size_t>(b)])
                   << (8 * b);
        EXPECT_EQ(sum, 2u * (60u * 61u / 2u)) << "slice " << slice;
    }
}

} // namespace
} // namespace qr
