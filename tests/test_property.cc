/**
 * @file
 * Property tests: randomly generated racy guest programs, swept over
 * seeds, store-buffer depths and timeslices, must (a) record twice to
 * bit-identical logs (simulator determinism) and (b) replay to
 * bit-identical architectural state (recorder soundness). These sweeps
 * hammer exactly the hard cases -- RSW holdback, filter clears,
 * migration clock floors, conflict ordering -- with adversarial
 * interleavings no hand-written test would find.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/session.hh"
#include "guest/runtime.hh"
#include "replay/chunk_graph.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

/** Generate a random racy multithreaded program. */
Program
randomProgram(std::uint64_t seed, int threads, int ops)
{
    GuestBuilder g;
    Rng rng(seed);
    constexpr std::uint32_t sharedWords = 128; // two lines per thread-ish
    Addr shared = g.alignedBlock(sharedWords);
    Addr lock = g.lockAlloc();
    Addr futexWord = g.alignedBlock(1, 0xf00d);
    Addr results =
        g.alignedBlock(16u * static_cast<std::uint32_t>(threads));

    auto sharedAddr = [&] {
        return shared + static_cast<Addr>(rng.below(sharedWords)) * 4;
    };

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.sysWrite(results, static_cast<Word>(threads) * 64);
    });

    g.label(body);
    g.mv(s0, a0);
    g.addi(s1, a0, 1); // accumulator
    for (int i = 0; i < ops; ++i) {
        switch (rng.below(14)) {
          case 0: // random ALU
            g.li(t1, rng.next32());
            g.add(s1, s1, t1);
            break;
          case 1:
            g.li(t1, rng.next32() | 1);
            g.mul(s1, s1, t1);
            break;
          case 2: { // shared load
            g.li(t1, sharedAddr());
            g.lw(t2, t1, 0);
            g.xor_(s1, s1, t2);
            break;
          }
          case 3: { // shared store
            g.li(t1, sharedAddr());
            g.sw(s1, t1, 0);
            break;
          }
          case 4: { // fetchadd
            g.li(t1, sharedAddr());
            g.fetchadd(t2, t1, s1);
            g.add(s1, s1, t2);
            break;
          }
          case 5: { // cas with random expectation
            g.li(t1, sharedAddr());
            g.li(t2, rng.next32() & 0xff);
            g.cas(t2, t1, s1);
            g.add(s1, s1, t2);
            break;
          }
          case 6: { // swap
            g.li(t1, sharedAddr());
            g.mv(t2, s1);
            g.swap(t2, t1);
            g.xor_(s1, s1, t2);
            break;
          }
          case 7:
            g.fence();
            break;
          case 8: { // bounded pure loop
            std::string l = g.newLabel("bl");
            g.li(t5, static_cast<Word>(rng.range(2, 9)));
            g.label(l);
            g.add(s1, s1, t5);
            g.addi(t5, t5, -1);
            g.bne(t5, zero, l);
            break;
          }
          case 9: { // locked read-modify-write section
            Addr target = sharedAddr();
            g.li(s3, lock);
            g.spinLockAcquire(s3, t1, t4);
            g.li(t1, target);
            g.lw(t2, t1, 0);
            g.add(t2, t2, s1);
            g.sw(t2, t1, 0);
            g.spinLockRelease(s3, t1);
            break;
          }
          case 10: { // nondeterministic instruction
            switch (rng.below(3)) {
              case 0: g.rdtsc(t2); break;
              case 1: g.rdrand(t2); break;
              default: g.cpuid(t2); break;
            }
            g.add(s1, s1, t2);
            break;
          }
          case 11: { // kernel interaction
            switch (rng.below(3)) {
              case 0: g.sys(Sys::Time); break;
              case 1: g.sys(Sys::Random); break;
              default: g.sys(Sys::GetTid); break;
            }
            g.add(s1, s1, a0);
            break;
          }
          case 12: { // futex wait that always sees a stale value
            g.li(a0, futexWord);
            g.li(a1, 0); // word holds 0xf00d: immediate EAGAIN
            g.sys(Sys::FutexWait);
            g.add(s1, s1, a0);
            break;
          }
          case 13: // wake with no waiters (logged result 0)
            g.li(a0, futexWord);
            g.li(a1, 2);
            g.sys(Sys::FutexWake);
            g.add(s1, s1, a0);
            break;
        }
    }
    // Publish the accumulator on a private line.
    g.slli(t1, s0, 6);
    g.li(t2, results);
    g.add(t2, t2, t1);
    g.sw(s1, t2, 0);
    g.ret();
    return g.finish();
}

using PropParam = std::tuple<std::uint64_t /* seed */,
                             std::uint32_t /* sbDepth */,
                             Tick /* timeslice */>;

class RandomPrograms : public ::testing::TestWithParam<PropParam>
{
};

TEST_P(RandomPrograms, RecordsDeterministicallyAndReplaysExactly)
{
    auto [seed, depth, slice] = GetParam();
    int threads = 2 + static_cast<int>(seed % 3);
    Program prog = randomProgram(seed * 0x9e3779b9ull + 1, threads, 140);

    MachineConfig mcfg;
    mcfg.memBytes = 8u << 20;
    mcfg.numCores = 2 + static_cast<int>(seed % 2) * 2;
    mcfg.core.sbDepth = depth;
    mcfg.core.timeslice = slice;

    // (a) the simulator itself is deterministic: identical logs twice.
    RecordResult first = recordProgram(prog, mcfg);
    RecordResult second = recordProgram(prog, mcfg);
    ASSERT_EQ(first.logs.serialize(), second.logs.serialize());
    ASSERT_EQ(first.metrics.digests, second.metrics.digests);

    // (b) the recording replays bit-exactly.
    ReplayResult rep = replaySphere(prog, first.logs);
    ASSERT_TRUE(rep.ok) << "seed=" << seed << " depth=" << depth
                        << " slice=" << slice << ": "
                        << rep.divergence;
    VerifyReport v = verifyDigests(first.metrics.digests, rep.digests);
    EXPECT_TRUE(v.ok) << "seed=" << seed << " depth=" << depth
                      << " slice=" << slice << ":\n" << v.str();
    EXPECT_EQ(rep.replayedInstrs, first.metrics.instrs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPrograms,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                         6ull, 7ull, 8ull),
                       ::testing::Values(1u, 8u, 32u),
                       ::testing::Values(Tick{1500}, Tick{20000})));

/** True iff two sorted address vectors share an element. */
bool
intersects(const std::vector<Addr> &a, const std::vector<Addr> &b)
{
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j])
            i++;
        else if (b[j] < a[i])
            j++;
        else
            return true;
    }
    return false;
}

/**
 * DAG soundness: over random recorded spheres, the chunk-dependence
 * graph must be acyclic, must order every conflicting chunk pair
 * (overlapping access sets with at least one write) by a path, must
 * order every same-thread pair, and must account for exactly the
 * sequential modeled replay cost.
 */
TEST(ChunkGraphSoundness, ConflictingPairsAreOrderedByAPath)
{
    for (std::uint64_t seed = 200; seed < 206; ++seed) {
        Program prog = randomProgram(seed, 3, 110);
        MachineConfig mcfg;
        mcfg.memBytes = 8u << 20;
        mcfg.numCores = 4;
        RecordResult rec = recordProgram(prog, mcfg);
        ReplayResult rep = replaySphere(prog, rec.logs);
        ASSERT_TRUE(rep.ok) << "seed=" << seed << ": " << rep.divergence;

        ChunkGraph g = buildChunkGraph(prog, rec.logs);
        ASSERT_TRUE(g.ok) << "seed=" << seed << ": " << g.divergence;
        ASSERT_EQ(g.nodes.size(), rep.replayedChunks);
        EXPECT_TRUE(g.isAcyclic()) << "seed=" << seed;
        EXPECT_EQ(g.totalCycles(), rep.modeledCycles) << "seed=" << seed;
        EXPECT_LE(g.criticalPathCycles(), g.totalCycles());

        // Edges are forward-only and in-degrees match edge count.
        std::uint64_t edgeCount = 0, predSum = 0;
        for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
            for (std::uint32_t s : g.nodes[i].succs) {
                EXPECT_GT(s, i) << "seed=" << seed;
                EXPECT_LT(s, g.nodes.size());
                edgeCount++;
            }
            predSum += g.nodes[i].preds;
        }
        EXPECT_EQ(edgeCount, g.edges) << "seed=" << seed;
        EXPECT_EQ(predSum, g.edges) << "seed=" << seed;

        ReachMatrix reach(g);
        for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
            for (std::uint32_t j = i + 1; j < g.nodes.size(); ++j) {
                const ChunkNode &a = g.nodes[i];
                const ChunkNode &b = g.nodes[j];
                bool conflict = intersects(a.writes, b.writes) ||
                                intersects(a.writes, b.reads) ||
                                intersects(a.reads, b.writes);
                bool sameThread = a.rec.tid == b.rec.tid;
                if (conflict || sameThread) {
                    EXPECT_TRUE(reach.reaches(i, j))
                        << "seed=" << seed << " unordered chunks " << i
                        << " (tid " << a.rec.tid << ") and " << j
                        << " (tid " << b.rec.tid << ")";
                }
            }
        }
    }
}

TEST(RandomProgramsLong, ManySeedsDefaultConfig)
{
    // Broad seed coverage at the default configuration.
    for (std::uint64_t seed = 100; seed < 140; ++seed) {
        Program prog = randomProgram(seed, 4, 100);
        MachineConfig mcfg;
        mcfg.memBytes = 8u << 20;
        RoundTrip rt = recordAndReplay(prog, mcfg);
        ASSERT_TRUE(rt.replay.ok)
            << "seed=" << seed << ": " << rt.replay.divergence;
        ASSERT_TRUE(rt.verify.ok)
            << "seed=" << seed << ":\n" << rt.verify.str();
    }
}

} // namespace
} // namespace qr
