/**
 * @file
 * Property tests: randomly generated racy guest programs, swept over
 * seeds, store-buffer depths and timeslices, must (a) record twice to
 * bit-identical logs (simulator determinism) and (b) replay to
 * bit-identical architectural state (recorder soundness). These sweeps
 * hammer exactly the hard cases -- RSW holdback, filter clears,
 * migration clock floors, conflict ordering -- with adversarial
 * interleavings no hand-written test would find.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>

#include "core/session.hh"
#include "guest/runtime.hh"
#include "replay/chunk_graph.hh"
#include "replay/ready_queue.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

/** Generate a random racy multithreaded program. */
Program
randomProgram(std::uint64_t seed, int threads, int ops)
{
    GuestBuilder g;
    Rng rng(seed);
    constexpr std::uint32_t sharedWords = 128; // two lines per thread-ish
    Addr shared = g.alignedBlock(sharedWords);
    Addr lock = g.lockAlloc();
    Addr futexWord = g.alignedBlock(1, 0xf00d);
    Addr results =
        g.alignedBlock(16u * static_cast<std::uint32_t>(threads));

    auto sharedAddr = [&] {
        return shared + static_cast<Addr>(rng.below(sharedWords)) * 4;
    };

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.sysWrite(results, static_cast<Word>(threads) * 64);
    });

    g.label(body);
    g.mv(s0, a0);
    g.addi(s1, a0, 1); // accumulator
    for (int i = 0; i < ops; ++i) {
        switch (rng.below(14)) {
          case 0: // random ALU
            g.li(t1, rng.next32());
            g.add(s1, s1, t1);
            break;
          case 1:
            g.li(t1, rng.next32() | 1);
            g.mul(s1, s1, t1);
            break;
          case 2: { // shared load
            g.li(t1, sharedAddr());
            g.lw(t2, t1, 0);
            g.xor_(s1, s1, t2);
            break;
          }
          case 3: { // shared store
            g.li(t1, sharedAddr());
            g.sw(s1, t1, 0);
            break;
          }
          case 4: { // fetchadd
            g.li(t1, sharedAddr());
            g.fetchadd(t2, t1, s1);
            g.add(s1, s1, t2);
            break;
          }
          case 5: { // cas with random expectation
            g.li(t1, sharedAddr());
            g.li(t2, rng.next32() & 0xff);
            g.cas(t2, t1, s1);
            g.add(s1, s1, t2);
            break;
          }
          case 6: { // swap
            g.li(t1, sharedAddr());
            g.mv(t2, s1);
            g.swap(t2, t1);
            g.xor_(s1, s1, t2);
            break;
          }
          case 7:
            g.fence();
            break;
          case 8: { // bounded pure loop
            std::string l = g.newLabel("bl");
            g.li(t5, static_cast<Word>(rng.range(2, 9)));
            g.label(l);
            g.add(s1, s1, t5);
            g.addi(t5, t5, -1);
            g.bne(t5, zero, l);
            break;
          }
          case 9: { // locked read-modify-write section
            Addr target = sharedAddr();
            g.li(s3, lock);
            g.spinLockAcquire(s3, t1, t4);
            g.li(t1, target);
            g.lw(t2, t1, 0);
            g.add(t2, t2, s1);
            g.sw(t2, t1, 0);
            g.spinLockRelease(s3, t1);
            break;
          }
          case 10: { // nondeterministic instruction
            switch (rng.below(3)) {
              case 0: g.rdtsc(t2); break;
              case 1: g.rdrand(t2); break;
              default: g.cpuid(t2); break;
            }
            g.add(s1, s1, t2);
            break;
          }
          case 11: { // kernel interaction
            switch (rng.below(3)) {
              case 0: g.sys(Sys::Time); break;
              case 1: g.sys(Sys::Random); break;
              default: g.sys(Sys::GetTid); break;
            }
            g.add(s1, s1, a0);
            break;
          }
          case 12: { // futex wait that always sees a stale value
            g.li(a0, futexWord);
            g.li(a1, 0); // word holds 0xf00d: immediate EAGAIN
            g.sys(Sys::FutexWait);
            g.add(s1, s1, a0);
            break;
          }
          case 13: // wake with no waiters (logged result 0)
            g.li(a0, futexWord);
            g.li(a1, 2);
            g.sys(Sys::FutexWake);
            g.add(s1, s1, a0);
            break;
        }
    }
    // Publish the accumulator on a private line.
    g.slli(t1, s0, 6);
    g.li(t2, results);
    g.add(t2, t2, t1);
    g.sw(s1, t2, 0);
    g.ret();
    return g.finish();
}

using PropParam = std::tuple<std::uint64_t /* seed */,
                             std::uint32_t /* sbDepth */,
                             Tick /* timeslice */>;

class RandomPrograms : public ::testing::TestWithParam<PropParam>
{
};

TEST_P(RandomPrograms, RecordsDeterministicallyAndReplaysExactly)
{
    auto [seed, depth, slice] = GetParam();
    int threads = 2 + static_cast<int>(seed % 3);
    Program prog = randomProgram(seed * 0x9e3779b9ull + 1, threads, 140);

    MachineConfig mcfg;
    mcfg.memBytes = 8u << 20;
    mcfg.numCores = 2 + static_cast<int>(seed % 2) * 2;
    mcfg.core.sbDepth = depth;
    mcfg.core.timeslice = slice;

    // (a) the simulator itself is deterministic: identical logs twice.
    RecordResult first = recordProgram(prog, mcfg);
    RecordResult second = recordProgram(prog, mcfg);
    ASSERT_EQ(first.logs.serialize(), second.logs.serialize());
    ASSERT_EQ(first.metrics.digests, second.metrics.digests);

    // (b) the recording replays bit-exactly.
    ReplayResult rep = replaySphere(prog, first.logs);
    ASSERT_TRUE(rep.ok) << "seed=" << seed << " depth=" << depth
                        << " slice=" << slice << ": "
                        << rep.divergence;
    VerifyReport v = verifyDigests(first.metrics.digests, rep.digests);
    EXPECT_TRUE(v.ok) << "seed=" << seed << " depth=" << depth
                      << " slice=" << slice << ":\n" << v.str();
    EXPECT_EQ(rep.replayedInstrs, first.metrics.instrs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPrograms,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                         6ull, 7ull, 8ull),
                       ::testing::Values(1u, 8u, 32u),
                       ::testing::Values(Tick{1500}, Tick{20000})));

/** True iff two sorted address vectors share an element. */
bool
intersects(const std::vector<Addr> &a, const std::vector<Addr> &b)
{
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j])
            i++;
        else if (b[j] < a[i])
            j++;
        else
            return true;
    }
    return false;
}

/**
 * DAG soundness: over random recorded spheres, the chunk-dependence
 * graph must be acyclic, must order every conflicting chunk pair
 * (overlapping access sets with at least one write) by a path, must
 * order every same-thread pair, and must account for exactly the
 * sequential modeled replay cost.
 */
TEST(ChunkGraphSoundness, ConflictingPairsAreOrderedByAPath)
{
    for (std::uint64_t seed = 200; seed < 206; ++seed) {
        Program prog = randomProgram(seed, 3, 110);
        MachineConfig mcfg;
        mcfg.memBytes = 8u << 20;
        mcfg.numCores = 4;
        RecordResult rec = recordProgram(prog, mcfg);
        ReplayResult rep = replaySphere(prog, rec.logs);
        ASSERT_TRUE(rep.ok) << "seed=" << seed << ": " << rep.divergence;

        ChunkGraph g = buildChunkGraph(prog, rec.logs);
        ASSERT_TRUE(g.ok) << "seed=" << seed << ": " << g.divergence;
        ASSERT_EQ(g.nodes.size(), rep.replayedChunks);
        EXPECT_TRUE(g.isAcyclic()) << "seed=" << seed;
        EXPECT_EQ(g.totalCycles(), rep.modeledCycles) << "seed=" << seed;
        EXPECT_LE(g.criticalPathCycles(), g.totalCycles());

        // Edges are forward-only and in-degrees match edge count.
        std::uint64_t edgeCount = 0, predSum = 0;
        for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
            for (std::uint32_t s : g.nodes[i].succs) {
                EXPECT_GT(s, i) << "seed=" << seed;
                EXPECT_LT(s, g.nodes.size());
                edgeCount++;
            }
            predSum += g.nodes[i].preds;
        }
        EXPECT_EQ(edgeCount, g.edges) << "seed=" << seed;
        EXPECT_EQ(predSum, g.edges) << "seed=" << seed;

        ReachMatrix reach(g);
        for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
            for (std::uint32_t j = i + 1; j < g.nodes.size(); ++j) {
                const ChunkNode &a = g.nodes[i];
                const ChunkNode &b = g.nodes[j];
                bool conflict = intersects(a.writes, b.writes) ||
                                intersects(a.writes, b.reads) ||
                                intersects(a.reads, b.writes);
                bool sameThread = a.rec.tid == b.rec.tid;
                if (conflict || sameThread) {
                    EXPECT_TRUE(reach.reaches(i, j))
                        << "seed=" << seed << " unordered chunks " << i
                        << " (tid " << a.rec.tid << ") and " << j
                        << " (tid " << b.rec.tid << ")";
                }
            }
        }
    }
}

/*
 * Scheduler-primitive properties: the concurrent replay engine's
 * ready queue and commit-fence protocol, hammered directly with
 * synthetic random DAGs and real worker threads. The DAGs are built
 * exactly the way chunk graphs are (last-writer / readers-since walk
 * over random access sets), so every pair of nodes sharing a line
 * with at least one write is path-ordered -- the precondition the
 * replay engine guarantees. The properties under test: any worker
 * interleaving is a topological execution that (a) commits every node
 * exactly once and (b) never lets a node observe a predecessor's
 * effects before that predecessor's commit fence, asserted through
 * the same per-line sequence versions the engine uses.
 */

/** A synthetic chunk DAG with its commit-fence plan. */
struct SynthDag
{
    struct Node
    {
        std::vector<std::uint32_t> succs;
        std::uint32_t preds = 0;
    };
    std::vector<Node> nodes;
    /** Per node: (line, minimum version) checked at claim. */
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        expect;
    /** Per node: (line, version) published at commit. */
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        publish;
    std::size_t lines = 0;
};

SynthDag
randomDag(std::uint64_t seed, std::size_t n, std::uint32_t linePool)
{
    Rng rng(mix64(seed + 1));
    SynthDag d;
    d.nodes.resize(n);
    d.expect.resize(n);
    d.publish.resize(n);
    d.lines = linePool;

    std::vector<std::int64_t> lastWriter(linePool, -1);
    std::vector<std::vector<std::uint32_t>> readersSince(linePool);
    std::vector<std::uint32_t> version(linePool, 0);

    for (std::uint32_t i = 0; i < n; ++i) {
        std::vector<std::uint32_t> succsOf; // predecessors, deduped below
        auto addEdge = [&](std::uint32_t from) {
            if (from != i)
                d.nodes[from].succs.push_back(i);
        };
        std::uint32_t nReads = static_cast<std::uint32_t>(rng.below(3));
        std::uint32_t nWrites = static_cast<std::uint32_t>(rng.below(3));
        // Claim-time expectations only cover *prior* nodes' versions:
        // a node never waits on a version it publishes itself (the
        // engine's FencePlan computes read expectations the same way,
        // before the node's own writes bump the counters).
        for (std::uint32_t r = 0; r < nReads; ++r) {
            std::uint32_t line =
                static_cast<std::uint32_t>(rng.below(linePool));
            if (lastWriter[line] >= 0 && lastWriter[line] != i) {
                addEdge(static_cast<std::uint32_t>(lastWriter[line]));
                d.expect[i].emplace_back(line, version[line]);
            }
            readersSince[line].push_back(i);
        }
        for (std::uint32_t w = 0; w < nWrites; ++w) {
            std::uint32_t line =
                static_cast<std::uint32_t>(rng.below(linePool));
            if (lastWriter[line] >= 0 && lastWriter[line] != i) {
                addEdge(static_cast<std::uint32_t>(lastWriter[line]));
                d.expect[i].emplace_back(line, version[line]);
            }
            for (std::uint32_t r : readersSince[line])
                addEdge(r);
            readersSince[line].clear();
            lastWriter[line] = i;
            version[line]++;
            d.publish[i].emplace_back(line, version[line]);
        }
        (void)succsOf;
    }
    for (auto &node : d.nodes) {
        std::sort(node.succs.begin(), node.succs.end());
        node.succs.erase(
            std::unique(node.succs.begin(), node.succs.end()),
            node.succs.end());
    }
    for (const auto &node : d.nodes)
        for (std::uint32_t s : node.succs)
            d.nodes[s].preds++;
    // Dedup expectations too (a line can be read and written by the
    // same node); keep the max version per line.
    for (auto &ex : d.expect) {
        std::sort(ex.begin(), ex.end());
        ex.erase(std::unique(ex.begin(), ex.end()), ex.end());
    }
    return d;
}

/**
 * Run @p workers real threads over @p d through the engine's own
 * primitives (ReadyQueue + LineVersionTable + atomic pred counters)
 * and count protocol violations. "Effects" are modeled as a plain
 * per-line array each committer stamps with its version before the
 * release publish -- exactly how guest memory rides the protocol.
 */
void
runSynthDagPool(const SynthDag &d, int workers,
                std::uint64_t perturbSeed)
{
    const std::size_t n = d.nodes.size();
    ReadyQueue queue(std::max<std::size_t>(n, 1));
    LineVersionTable versions;
    versions.arm(d.lines);
    std::vector<std::atomic<std::uint32_t>> preds(n);
    std::vector<std::atomic<std::uint32_t>> commits(n);
    std::vector<std::uint32_t> data(d.lines, 0); // plain: DAG-ordered
    std::atomic<std::size_t> remaining{n};
    std::atomic<std::uint64_t> fenceViolations{0};
    std::atomic<std::uint64_t> staleData{0};
    std::atomic<std::uint64_t> doubleCommits{0};

    for (std::uint32_t i = 0; i < n; ++i) {
        preds[i].store(d.nodes[i].preds, std::memory_order_relaxed);
        commits[i].store(0, std::memory_order_relaxed);
        if (d.nodes[i].preds == 0)
            queue.push(i);
    }
    if (n == 0)
        queue.close();

    auto worker = [&](int w) {
        Rng rng(mix64(perturbSeed ^ (0x517cc1b727220a95ull * (w + 1))));
        std::uint32_t i;
        while (queue.pop(i)) {
            if (rng.below(4) == 0)
                std::this_thread::yield();
            else if (rng.below(8) == 0)
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<long>(1 + rng.below(20))));

            bool fenced = true;
            for (const auto &[line, need] : d.expect[i]) {
                if (versions.current(line) < need) {
                    fenceViolations.fetch_add(1);
                    fenced = false;
                }
            }
            // Only touch the plain data once the version check passed:
            // the acquire load above is what orders the access.
            if (fenced)
                for (const auto &[line, need] : d.expect[i])
                    if (data[line] < need)
                        staleData.fetch_add(1);

            if (commits[i].fetch_add(1) != 0)
                doubleCommits.fetch_add(1);

            if (rng.below(4) == 0)
                std::this_thread::yield();

            for (const auto &[line, ver] : d.publish[i]) {
                data[line] = ver;
                versions.publish(line, ver);
            }
            for (std::uint32_t s : d.nodes[i].succs)
                if (preds[s].fetch_sub(
                        1, std::memory_order_acq_rel) == 1)
                    queue.push(s);
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
                queue.close();
        }
    };

    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w)
        pool.emplace_back(worker, w);
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(fenceViolations.load(), 0u) << "workers=" << workers;
    EXPECT_EQ(staleData.load(), 0u) << "workers=" << workers;
    EXPECT_EQ(doubleCommits.load(), 0u) << "workers=" << workers;
    EXPECT_EQ(remaining.load(), 0u) << "workers=" << workers;
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(commits[i].load(), 1u)
            << "node " << i << " workers=" << workers;
}

TEST(CommitFence, RandomDagsCommitOnceAndNeverOutrunTheFence)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        SynthDag d = randomDag(seed, 120, 10);
        for (int workers : {2, 4, 8})
            runSynthDagPool(d, workers, seed * 131 + workers);
    }
}

TEST(CommitFence, LinearChainSerializesCompletely)
{
    // Degenerate DAG: one line written by every node. The fence plan
    // forces versions 1..n in strict order no matter the worker count.
    const std::size_t n = 64;
    SynthDag d;
    d.nodes.resize(n);
    d.expect.resize(n);
    d.publish.resize(n);
    d.lines = 1;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (i > 0) {
            d.nodes[i - 1].succs.push_back(i);
            d.nodes[i].preds = 1;
            d.expect[i].emplace_back(0u, i);
        }
        d.publish[i].emplace_back(0u, i + 1);
    }
    for (int workers : {2, 8})
        runSynthDagPool(d, workers, 42 + workers);
}

TEST(ReadyQueue, ConcurrentPushPopDeliversEachValueExactlyOnce)
{
    constexpr int producers = 4, consumers = 4, perProducer = 250;
    constexpr std::uint32_t total = producers * perProducer;
    ReadyQueue q(total);
    std::vector<std::atomic<std::uint32_t>> seen(total);
    for (auto &s : seen)
        s.store(0, std::memory_order_relaxed);
    std::atomic<std::uint32_t> consumed{0};

    std::vector<std::thread> pool;
    for (int c = 0; c < consumers; ++c)
        pool.emplace_back([&] {
            std::uint32_t v;
            while (q.pop(v)) {
                seen[v].fetch_add(1);
                consumed.fetch_add(1);
            }
        });
    for (int p = 0; p < producers; ++p)
        pool.emplace_back([&, p] {
            Rng rng(mix64(p + 1));
            for (std::uint32_t k = 0; k < perProducer; ++k) {
                q.push(static_cast<std::uint32_t>(p) * perProducer + k);
                if (rng.below(8) == 0)
                    std::this_thread::yield();
            }
        });
    // Producers are threads [consumers, consumers+producers).
    for (int p = 0; p < producers; ++p)
        pool[static_cast<std::size_t>(consumers + p)].join();
    while (consumed.load() < total)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    q.close();
    for (int c = 0; c < consumers; ++c)
        pool[static_cast<std::size_t>(c)].join();

    for (std::uint32_t v = 0; v < total; ++v)
        EXPECT_EQ(seen[v].load(), 1u) << "value " << v;
}

TEST(ReadyQueue, CloseWakesParkedConsumers)
{
    ReadyQueue q(8);
    std::atomic<int> wokeEmpty{0};
    std::vector<std::thread> pool;
    for (int c = 0; c < 3; ++c)
        pool.emplace_back([&] {
            std::uint32_t v;
            if (!q.pop(v)) // parks: the queue is empty and open
                wokeEmpty.fetch_add(1);
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    for (std::thread &t : pool)
        t.join();
    EXPECT_EQ(wokeEmpty.load(), 3);
    // Closed queues fail fast even with items still queued: an
    // aborting pool must not execute stragglers.
    EXPECT_TRUE(q.closed());
    std::uint32_t v;
    EXPECT_FALSE(q.pop(v));
}

TEST(ReadyQueue, TryPopIsNonBlockingAndOrdered)
{
    ReadyQueue q(4);
    std::uint32_t v = 99;
    EXPECT_FALSE(q.tryPop(v));
    q.push(7);
    q.push(8);
    ASSERT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 7u);
    ASSERT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 8u);
    EXPECT_FALSE(q.tryPop(v));
}

TEST(RandomProgramsLong, ManySeedsDefaultConfig)
{
    // Broad seed coverage at the default configuration.
    for (std::uint64_t seed = 100; seed < 140; ++seed) {
        Program prog = randomProgram(seed, 4, 100);
        MachineConfig mcfg;
        mcfg.memBytes = 8u << 20;
        RoundTrip rt = recordAndReplay(prog, mcfg);
        ASSERT_TRUE(rt.replay.ok)
            << "seed=" << seed << ": " << rt.replay.divergence;
        ASSERT_TRUE(rt.verify.ok)
            << "seed=" << seed << ":\n" << rt.verify.str();
    }
}

} // namespace
} // namespace qr
