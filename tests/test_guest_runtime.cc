/**
 * @file
 * Guest runtime-library tests: mutual exclusion of both lock flavors
 * under real contention, barrier phase integrity, and scaffold
 * conventions -- verified end-to-end on the machine.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/session.hh"
#include "guest/runtime.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

Word
mainOut(Machine &machine, std::size_t idx = 0)
{
    const auto &out = machine.outputs().at(1);
    Word w = 0;
    for (int b = 0; b < 4; ++b)
        w |= static_cast<Word>(out[idx * 4 + static_cast<std::size_t>(b)])
             << (8 * b);
    return w;
}

/** counter protected by the chosen lock; exact final value expected. */
Program
lockedCounter(bool hybrid, int threads, int iters)
{
    GuestBuilder g;
    Addr counter = g.alignedBlock(1);
    Addr lock = g.lockAlloc();
    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] { g.sysWrite(counter, 4); });
    g.label(body);
    g.li(s1, static_cast<Word>(iters));
    g.li(s2, lock);
    g.li(s3, counter);
    std::string loop = g.newLabel("loop");
    g.label(loop);
    if (hybrid)
        g.hybridLockAcquire(s2, t1, t2, 4); // tiny spin: force futexes
    else
        g.spinLockAcquire(s2, t1, t2);
    g.lw(t3, s3, 0);
    g.addi(t3, t3, 1);
    g.sw(t3, s3, 0);
    if (hybrid)
        g.hybridLockRelease(s2, t1);
    else
        g.spinLockRelease(s2, t1);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();
    return g.finish();
}

class LockKinds : public ::testing::TestWithParam<bool>
{
};

TEST_P(LockKinds, MutualExclusionUnderContention)
{
    for (Tick slice : {1500u, 5000u, 20000u}) {
        MachineConfig mcfg;
        mcfg.core.timeslice = slice;
        Machine machine(mcfg, RecorderConfig{},
                        lockedCounter(GetParam(), 4, 300), false);
        RunMetrics m = machine.run();
        EXPECT_EQ(mainOut(machine), 1200u)
            << (GetParam() ? "hybrid" : "spin") << " slice " << slice;
        if (GetParam()) {
            // The tiny spin bound must actually reach the kernel.
            EXPECT_GT(m.syscalls, 20u) << "hybrid lock never slept";
        }
    }
}

TEST_P(LockKinds, MoreThreadsThanCores)
{
    MachineConfig mcfg;
    mcfg.numCores = 2;
    mcfg.core.timeslice = 2500;
    Machine machine(mcfg, RecorderConfig{},
                    lockedCounter(GetParam(), 6, 150), false);
    machine.run();
    EXPECT_EQ(mainOut(machine), 900u);
}

INSTANTIATE_TEST_SUITE_P(Guest, LockKinds, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? std::string("hybrid")
                                               : std::string("spin");
                         });

TEST(Barrier, NoThreadEntersPhaseEarly)
{
    // Each thread increments its phase counter, hits the barrier, and
    // then checks that EVERY thread's counter has reached the phase --
    // any barrier leak makes a check fail and sets the error flag.
    constexpr int threads = 4;
    constexpr int phases = 20;
    GuestBuilder g;
    Addr counters = g.alignedBlock(16 * threads);
    Addr bar = g.barrierAlloc();
    Addr errors = g.alignedBlock(1);

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] { g.sysWrite(errors, 4); });
    g.label(body);
    g.mv(s0, a0);
    g.li(s1, 0); // phase
    std::string phase = g.newLabel("phase");
    g.label(phase);
    // bump my counter (private line)
    g.slli(t1, s0, 6);
    g.li(t2, counters);
    g.add(s2, t2, t1);
    g.addi(t3, s1, 1);
    g.sw(t3, s2, 0);
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    // after the barrier, everyone must be at >= phase+1
    g.addi(s3, s1, 1);
    for (int other = 0; other < threads; ++other) {
        std::string ok = g.newLabel("ok");
        g.li(t1, counters + static_cast<Addr>(other) * 64);
        g.lw(t2, t1, 0);
        g.bge(t2, s3, ok);
        g.li(t3, errors);
        g.li(t4, 1);
        g.fetchadd(t4, t3, t4);
        g.label(ok);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    g.addi(s1, s1, 1);
    g.li(t1, phases);
    g.bne(s1, t1, phase);
    g.ret();

    MachineConfig mcfg;
    mcfg.core.timeslice = 3000;
    Machine machine(mcfg, RecorderConfig{}, g.finish(), false);
    machine.run();
    EXPECT_EQ(mainOut(machine), 0u) << "barrier leaked a thread";
}

TEST(Scaffold, WorkerIndicesAreDense)
{
    // Each worker stamps slot[index] = index + 1; all slots must be
    // stamped exactly once.
    constexpr int threads = 5;
    GuestBuilder g;
    Addr slots = g.alignedBlock(16 * threads);
    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.sysWrite(slots, 16 * threads * 4);
    });
    g.label(body);
    g.slli(t1, a0, 6);
    g.li(t2, slots);
    g.add(t2, t2, t1);
    g.addi(t3, a0, 1);
    g.sw(t3, t2, 0);
    g.ret();

    Machine machine(MachineConfig{}, RecorderConfig{}, g.finish(),
                    false);
    machine.run();
    for (int i = 0; i < threads; ++i)
        EXPECT_EQ(mainOut(machine, static_cast<std::size_t>(i) * 16),
                  static_cast<Word>(i + 1));
}

TEST(ComputePad, IsDeterministicAndCounted)
{
    GuestBuilder g;
    Addr out = g.word();
    g.li(t1, 12345);
    g.computePad(t1, t2, 10);
    g.li(t3, out);
    g.sw(t1, t3, 0);
    g.sysWrite(out, 4);
    g.sysExit(0);
    MachineConfig mcfg;
    mcfg.memBytes = 4u << 20;
    Machine a(mcfg, RecorderConfig{}, g.finish(), false);
    RunMetrics m = a.run();
    // li t1 + (li counter + 10*(mul,addi,addi,bne)) + li t3 + sw
    // + write shim (5) + exit shim (3) = 52
    EXPECT_EQ(m.instrs, 52u);
    Word v = mainOut(a);
    EXPECT_NE(v, 12345u);
}

} // namespace
} // namespace qr
