/**
 * @file
 * Tests for the artifact store's rotation/retention machinery and for
 * artifact recovery racing it: sequential naming, commit accounting
 * (including the dedup on a save retry racing repair), count and byte
 * budget enforcement (compact-then-evict), injected ENOSPC during a
 * compaction rewrite leaving the original intact, recovery of a file
 * that rotation evicted mid-sweep, and double-recovery idempotence.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "capo/retention.hh"
#include "core/artifact.hh"
#include "core/session.hh"
#include "fault/fault_plan.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace
{

using namespace qr;

struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const std::string &name)
        : path("/tmp/qr_ret_" + name)
    {
        wipe();
    }

    ~ScratchDir() { wipe(); }

    void wipe()
    {
        DIR *d = ::opendir(path.c_str());
        if (d) {
            while (struct dirent *e = ::readdir(d)) {
                std::string n = e->d_name;
                if (n != "." && n != "..")
                    ::unlink((path + "/" + n).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(path.c_str());
    }
};

/** Record a tiny sphere and build its artifact (optionally traced). */
SphereArtifact
smallArtifact(std::size_t traceBytes = 0)
{
    Workload w = makeRacyCounter(2, 60, false);
    RecordResult rec = recordProgram(w.program);
    SphereArtifact art{w.name, 2, 1, rec.metrics.digests,
                       std::move(rec.logs), {}};
    // The trace section is opaque bytes at the container layer, so a
    // fabricated one makes the artifact compactible without arming
    // the global event tracer.
    art.trace.assign(traceBytes, 0x55);
    return art;
}

std::uint64_t
fileBytes(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0
               ? static_cast<std::uint64_t>(st.st_size)
               : 0;
}

/**
 * Write @p art sealed at @p path, then tear the tail off: the seal
 * trailer and the last segment(s) are gone, but the header segment
 * survives, so salvage has a real prefix to recover (a deterministic
 * stand-in for a mid-write crash, unlike the seeded io-torn cut).
 */
void
tearArtifact(const SphereArtifact &art, const std::string &path)
{
    ASSERT_TRUE(saveArtifact(art, path).ok);
    std::uint64_t whole = fileBytes(path);
    ASSERT_GT(whole, 1800u);
    ASSERT_EQ(::truncate(path.c_str(),
                         static_cast<off_t>(whole - 700)), 0);
}

// --- Store naming and accounting ----------------------------------------

TEST(ArtifactStore, NextPathIsSequentialAndStemmed)
{
    ScratchDir dir("naming");
    ArtifactStore store(dir.path);
    EXPECT_EQ(store.nextPath("foo"),
              dir.path + "/sphere-000001-foo.qrec");
    EXPECT_EQ(store.nextPath("bar"),
              dir.path + "/sphere-000002-bar.qrec");
}

TEST(ArtifactStore, CommitDedupesByPath)
{
    ScratchDir dir("dedup");
    ArtifactStore store(dir.path);
    std::string p = store.nextPath("a");
    store.commit(p, 100);
    // A save retry racing the repair loop hands the same path over
    // twice; the second commit must refresh, not double-count.
    store.commit(p, 140);
    EXPECT_EQ(store.retainedCount(), 1u);
    EXPECT_EQ(store.retainedBytes(), 140u);
    EXPECT_TRUE(store.remove(p, false));
    EXPECT_EQ(store.retainedBytes(), 0u);
    EXPECT_FALSE(store.remove(p, false));
}

TEST(ArtifactStore, EnforceEvictsOldestPastCountBudget)
{
    ScratchDir dir("count");
    ::mkdir(dir.path.c_str(), 0755);
    ArtifactStore store(dir.path);
    std::string paths[3];
    for (auto &p : paths) {
        p = store.nextPath("w");
        FILE *f = std::fopen(p.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("xxxx", f);
        std::fclose(f);
        store.commit(p, 4);
    }
    RetentionPolicy pol;
    pol.maxArtifacts = 1;
    RotationResult res = store.enforce(pol, nullptr, nullptr);
    EXPECT_EQ(res.evicted, 2u);
    EXPECT_EQ(res.bytesFreed, 8u);
    EXPECT_EQ(store.retainedCount(), 1u);
    // Oldest-first: the survivor is the newest commit.
    EXPECT_EQ(::access(paths[0].c_str(), F_OK), -1);
    EXPECT_EQ(::access(paths[1].c_str(), F_OK), -1);
    EXPECT_EQ(::access(paths[2].c_str(), F_OK), 0);
}

TEST(ArtifactStore, EnforceCompactsBeforeEvictingOnByteBudget)
{
    ScratchDir dir("compact");
    ArtifactStore store(dir.path);
    std::string p1 = store.nextPath("a");
    std::string p2 = store.nextPath("b");
    store.commit(p1, 100);
    store.commit(p2, 100);

    RetentionPolicy pol;
    pol.maxBytes = 150;
    int compactCalls = 0;
    RotationResult res = store.enforce(
        pol,
        [&](const std::string &, FaultPlan *) {
            compactCalls++;
            CompactOutcome out;
            out.ok = true;
            out.newBytes = 40; // shrink 100 -> 40
            return out;
        },
        nullptr);
    // One compaction (200 -> 140) gets under budget; nothing evicted.
    EXPECT_EQ(compactCalls, 1);
    EXPECT_EQ(res.compacted, 1u);
    EXPECT_EQ(res.evicted, 0u);
    EXPECT_EQ(res.bytesFreed, 60u);
    EXPECT_EQ(store.retainedCount(), 2u);
    EXPECT_EQ(store.retainedBytes(), 140u);
}

TEST(ArtifactStore, RescanAdoptsSealedAndAdvancesSequence)
{
    ScratchDir dir("rescan");
    ::mkdir(dir.path.c_str(), 0755);
    SphereArtifact art = smallArtifact();
    std::string sealed = dir.path + "/sphere-000007-w.qrec";
    ASSERT_TRUE(saveArtifact(art, sealed).ok);
    // A torn neighbor must not be adopted (repair owns it) but must
    // still advance the sequence counter past its name.
    FaultPlan torn = FaultPlan::parse("io-torn@tick:0", 5);
    std::string tornPath = dir.path + "/sphere-000009-w.qrec";
    ASSERT_FALSE(saveArtifact(art, tornPath, &torn).ok);
    ASSERT_GT(fileBytes(tornPath), 0u);

    ArtifactStore store(dir.path);
    StoreScan scan = store.rescan();
    EXPECT_EQ(scan.sealed.size(), 1u);
    EXPECT_EQ(scan.unsealed.size(), 1u);
    EXPECT_EQ(store.retainedCount(), 1u);
    EXPECT_EQ(store.retainedBytes(), fileBytes(sealed));
    // New names start after everything seen on disk.
    EXPECT_EQ(store.nextPath("x"),
              dir.path + "/sphere-000010-x.qrec");
}

// --- Compaction vs injected I/O faults ----------------------------------

TEST(Retention, EnospcDuringCompactionKeepsOriginalIntact)
{
    ScratchDir dir("enospc");
    ::mkdir(dir.path.c_str(), 0755);
    ArtifactStore store(dir.path);

    // A real, compactible artifact (fat trace section) on disk.
    SphereArtifact art = smallArtifact(/* traceBytes = */ 4096);
    std::string path = store.nextPath("traced");
    ASSERT_TRUE(saveArtifact(art, path).ok);
    std::uint64_t before = fileBytes(path);
    store.commit(path, before);

    RetentionPolicy pol;
    pol.maxBytes = before / 2; // force a compaction attempt
    int failures = 0;
    RotationResult res = store.enforce(
        pol,
        [&](const std::string &p, FaultPlan *) {
            // The rewrite dies on injected ENOSPC; temp + rename must
            // leave the original artifact untouched.
            ArtifactLoadResult loaded = loadArtifact(p);
            EXPECT_TRUE(loaded.ok) << loaded.detail;
            loaded.artifact.trace.clear();
            FaultPlan enospc = FaultPlan::parse("io-enospc@tick:0", 7);
            SegmentedWriteResult w =
                saveArtifact(loaded.artifact, p, &enospc);
            EXPECT_FALSE(w.ok);
            EXPECT_TRUE(w.injected);
            ArtifactLoadResult after = loadArtifact(p);
            EXPECT_TRUE(after.ok) << after.detail;
            EXPECT_EQ(after.artifact.trace.size(), 4096u);
            failures++;
            CompactOutcome out;
            out.injected = w.injected;
            out.error = w.error;
            return out;
        },
        nullptr);
    EXPECT_EQ(failures, 1);
    EXPECT_EQ(res.compactFailures, 1u);
    // Still over budget with nothing else to compact: the artifact is
    // evicted -- visibly, through the eviction counter, not lost.
    EXPECT_EQ(res.evicted, 1u);
}

TEST(Retention, FailedCompactionIsNotRetriedForever)
{
    ScratchDir dir("noloop");
    ArtifactStore store(dir.path);
    std::string p = store.nextPath("a");
    store.commit(p, 100);
    RetentionPolicy pol;
    pol.maxBytes = 50;
    int calls = 0;
    RotationResult res = store.enforce(
        pol,
        [&](const std::string &, FaultPlan *) {
            calls++;
            return CompactOutcome{}; // always fails
        },
        nullptr);
    // compactTried guarantees progress: one failed attempt, then the
    // loop falls back to eviction instead of spinning.
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(res.compactFailures, 1u);
    EXPECT_EQ(res.evicted, 1u);
    EXPECT_EQ(store.retainedCount(), 0u);
}

// --- Recovery racing rotation -------------------------------------------

TEST(Recovery, VanishedFileIsAGracefulSkipNotACrash)
{
    ScratchDir dir("race");
    ::mkdir(dir.path.c_str(), 0755);
    SphereArtifact art = smallArtifact();
    FaultPlan torn = FaultPlan::parse("io-torn@tick:0", 11);
    std::string path = dir.path + "/sphere-000001-w.qrec";
    ASSERT_FALSE(saveArtifact(art, path, &torn).ok);

    ArtifactStore store(dir.path);
    StoreScan scan = store.scan();
    ASSERT_EQ(scan.unsealed.size(), 1u);

    // Rotation (or a save retry's rename) wins the race: the file is
    // gone by the time the repair sweep reaches it.
    ASSERT_EQ(::unlink(path.c_str()), 0);
    ArtifactRecoverResult r = recoverArtifact(path, path);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.stage, RecoverStage::Empty);
    EXPECT_EQ(r.detail.rfind("cannot read", 0), 0u) << r.detail;
}

TEST(Recovery, TornArtifactSalvagesToSealedReplayablePrefix)
{
    ScratchDir dir("salvage");
    ::mkdir(dir.path.c_str(), 0755);
    SphereArtifact art = smallArtifact(/* traceBytes = */ 4096);
    std::string path = dir.path + "/sphere-000001-w.qrec";
    tearArtifact(art, path);
    ASSERT_FALSE(loadArtifact(path).ok);

    ArtifactRecoverResult r = recoverArtifact(path, path);
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_FALSE(r.complete); // something was torn off
    EXPECT_GT(r.segments, 0u);
    EXPECT_EQ(r.bytes, fileBytes(path));

    ArtifactLoadResult loaded = loadArtifact(path);
    ASSERT_TRUE(loaded.ok) << loaded.detail;
    EXPECT_EQ(loaded.artifact.workload, art.workload);
}

TEST(Recovery, DoubleRecoveryIsIdempotent)
{
    ScratchDir dir("idem");
    ::mkdir(dir.path.c_str(), 0755);
    SphereArtifact art = smallArtifact(/* traceBytes = */ 4096);
    std::string path = dir.path + "/sphere-000001-w.qrec";
    tearArtifact(art, path);

    ArtifactRecoverResult first = recoverArtifact(path, path);
    ASSERT_TRUE(first.ok) << first.detail;
    std::uint64_t bytesAfterFirst = fileBytes(path);

    // Recovering an already-recovered artifact is a complete no-op:
    // nothing else is shaved off, the bytes on disk do not change.
    ArtifactRecoverResult second = recoverArtifact(path, path);
    ASSERT_TRUE(second.ok) << second.detail;
    EXPECT_TRUE(second.complete);
    EXPECT_EQ(fileBytes(path), bytesAfterFirst);
    EXPECT_TRUE(loadArtifact(path).ok);
}

} // namespace
