/**
 * @file
 * End-to-end smoke tests: the full record -> replay -> verify pipeline
 * on the micro-workloads. These run first; if they fail, everything
 * else will.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "workloads/micro.hh"

namespace qr
{
namespace
{

MachineConfig
smallMachine()
{
    MachineConfig m;
    m.numCores = 4;
    m.memBytes = 8u << 20;
    m.core.timeslice = 5000;
    return m;
}

TEST(Smoke, SingleThreadBaseline)
{
    Workload w = makeRacyCounter(1, 1000, false);
    RunMetrics m = runBaseline(w.program, smallMachine());
    EXPECT_GT(m.instrs, 3000u);
    EXPECT_EQ(m.digests.exits.size(), 1u);
}

TEST(Smoke, LockedCounterIsExact)
{
    Workload w = makeRacyCounter(4, 500, true);
    RunMetrics m = runBaseline(w.program, smallMachine());
    // Output is the 4-byte counter: must be exactly 4 * 500.
    EXPECT_EQ(m.digests.exits.size(), 4u);
}

TEST(Smoke, RecordReplayRacyCounter)
{
    Workload w = makeRacyCounter(4, 500, false);
    RoundTrip rt = recordAndReplay(w.program, smallMachine());
    ASSERT_TRUE(rt.replay.ok) << rt.replay.divergence;
    EXPECT_TRUE(rt.verify.ok) << rt.verify.str();
    EXPECT_GT(rt.record.metrics.chunks, 0u);
}

TEST(Smoke, RecordReplayPingPong)
{
    Workload w = makePingPong(300);
    RoundTrip rt = recordAndReplay(w.program, smallMachine());
    ASSERT_TRUE(rt.replay.ok) << rt.replay.divergence;
    EXPECT_TRUE(rt.verify.ok) << rt.verify.str();
}

TEST(Smoke, RecordReplayNondetMix)
{
    Workload w = makeNondetMix(2, 200);
    RoundTrip rt = recordAndReplay(w.program, smallMachine());
    ASSERT_TRUE(rt.replay.ok) << rt.replay.divergence;
    EXPECT_TRUE(rt.verify.ok) << rt.verify.str();
    EXPECT_GT(rt.record.metrics.inputRecords, 50u);
}

TEST(Smoke, RecordReplayProdCons)
{
    Workload w = makeProdCons(4, 100);
    RoundTrip rt = recordAndReplay(w.program, smallMachine());
    ASSERT_TRUE(rt.replay.ok) << rt.replay.divergence;
    EXPECT_TRUE(rt.verify.ok) << rt.verify.str();
}

TEST(Smoke, RecordReplaySignals)
{
    Workload w = makeSignalStress(10);
    RoundTrip rt = recordAndReplay(w.program, smallMachine());
    ASSERT_TRUE(rt.replay.ok) << rt.replay.divergence;
    EXPECT_TRUE(rt.verify.ok) << rt.verify.str();
    EXPECT_GT(rt.record.metrics.signalsDelivered, 0u);
}

} // namespace
} // namespace qr
