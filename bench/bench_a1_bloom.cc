/**
 * @file
 * A1 -- Bloom-filter sizing ablation. Small filters alias distinct
 * lines and terminate chunks on false conflicts, inflating the log;
 * the exact-shadow instrumentation classifies every conflict
 * termination as true or false. Run on the three most
 * conflict-sensitive workloads.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("A1", "Bloom-filter size vs false conflicts");
    const char *names[] = {"radix", "fft", "ocean"};
    Table t({"benchmark", "bloom bits", "chunks", "conflict term",
             "false confl", "false %", "memlog B/KI"});
    for (const char *name : names) {
        Workload w = makeByName(name, benchThreads, benchScale);
        for (std::uint32_t bits : {64u, 128u, 256u, 512u, 1024u, 2048u,
                                   4096u}) {
            RecorderConfig rcfg = benchRecorder();
            rcfg.rnr.bloom.bits = bits;
            rcfg.rnr.exactShadow = true;
            RecordResult rec = recordProgram(w.program, benchMachine(),
                                             rcfg);
            const RunMetrics &m = rec.metrics;
            std::uint64_t confl =
                m.reasonCounts[static_cast<int>(
                    ChunkReason::ConflictRaw)] +
                m.reasonCounts[static_cast<int>(
                    ChunkReason::ConflictWar)] +
                m.reasonCounts[static_cast<int>(
                    ChunkReason::ConflictWaw)];
            t.row().cell(name)
                .cell(static_cast<std::uint64_t>(bits)).cell(m.chunks)
                .cell(confl).cell(m.falseConflicts)
                .cellPct(percent(static_cast<double>(m.falseConflicts),
                                 static_cast<double>(confl)))
                .cell(m.memLogBytesPerKiloInstr(), 3);
        }
    }
    t.print();
    std::printf("\nExpected shape: false conflicts (and the log) "
                "shrink rapidly with filter\nsize and are negligible at "
                "the default 1024 bits.\n");
    return 0;
}
