/**
 * @file
 * E1 -- platform and recording-hardware parameter inventory (the
 * paper's platform table). Prints the simulated QuickIA configuration
 * and the QuickRec extension's architectural parameters.
 */

#include "common.hh"

#include "sim/logging.hh"

using namespace qr;

int
main()
{
    benchHeader("E1", "platform and recorder configuration");
    MachineConfig m = benchMachine();
    RecorderConfig r = benchRecorder();

    Table plat({"component", "parameter", "value"});
    plat.row().cell("cores").cell("count")
        .cell(static_cast<std::uint64_t>(m.numCores));
    plat.row().cell("cores").cell("model").cell("in-order, 1 IPC peak");
    plat.row().cell("cores").cell("store buffer (TSO)")
        .cell(csprintf("%u entries", m.core.sbDepth));
    plat.row().cell("cores").cell("timeslice")
        .cell(csprintf("%llu cycles",
                       (unsigned long long)m.core.timeslice));
    plat.row().cell("L1").cell("geometry")
        .cell(csprintf("%u sets x %u ways x %u B = %u KB",
                       m.cache.sets, m.cache.ways, m.cache.lineBytes,
                       m.cache.sets * m.cache.ways * m.cache.lineBytes /
                           1024));
    plat.row().cell("bus").cell("coherence").cell("MESI, snooping");
    plat.row().cell("bus").cell("occupancy / mem / c2c")
        .cell(csprintf("%llu / %llu / %llu cycles",
                       (unsigned long long)m.bus.occupancy,
                       (unsigned long long)m.bus.memLatency,
                       (unsigned long long)m.bus.cacheToCache));
    plat.row().cell("memory").cell("size")
        .cell(csprintf("%u MB", m.memBytes >> 20));
    plat.row().cell("clock").cell("frequency")
        .cell(csprintf("%.0f MHz (QuickIA)", benchClockHz / 1e6));
    plat.print();

    std::printf("\n");
    Table rec({"recorder parameter", "value"});
    rec.row().cell("Bloom filter size")
        .cell(csprintf("%u bits x %d hashes (R and W sets)",
                       r.rnr.bloom.bits, r.rnr.bloom.hashes));
    rec.row().cell("conflict granularity")
        .cell(csprintf("%u B (cache line)", r.rnr.lineBytes));
    rec.row().cell("max chunk size")
        .cell(csprintf("%u instructions", r.rnr.maxChunkInstrs));
    rec.row().cell("CBUF")
        .cell(csprintf("%u records x %u B per core, drain at %.0f%%",
                       r.cbuf.entries, ChunkRecord::cbufBytes,
                       r.cbuf.drainThreshold * 100));
    rec.row().cell("chunk record").cell("16 B fixed (CBUF) / packed "
                                        "varint (log)");
    rec.row().cell("timestamps").cell("64-bit Lamport, piggybacked on "
                                      "every bus transaction");
    rec.row().cell("TSO handling").cell("RSW counter per chunk "
                                        "(CoreRacer)");
    rec.print();
    return 0;
}
