/**
 * @file
 * E6 -- chunk-size characterization: per-benchmark mean/median/tail
 * chunk sizes plus a bucketed CDF. Sharing-heavy workloads terminate
 * chunks early (small chunks); compute-heavy ones run to the trap or
 * timer boundary.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E6", "chunk-size distribution (instructions per "
                      "chunk)");
    Table t({"benchmark", "chunks", "mean", "p50", "p90", "max"});
    Histogram all;
    forEachWorkload([&](const Workload &w) {
        RecordResult rec = recordProgram(w.program, benchMachine(),
                                         benchRecorder());
        const Histogram &h = rec.metrics.chunkSizes;
        t.row().cell(w.name).cell(h.count()).cell(h.mean(), 1)
            .cell(h.quantile(0.5)).cell(h.quantile(0.9)).cell(h.max());
        all.merge(h);
    });
    t.row().cell("all").cell(all.count()).cell(all.mean(), 1)
        .cell(all.quantile(0.5)).cell(all.quantile(0.9)).cell(all.max());
    t.print();

    // CDF over log2 buckets, aggregated across the suite.
    std::printf("\nCDF of chunk sizes (all benchmarks):\n");
    Table cdf({"chunk size <=", "fraction of chunks"});
    std::uint64_t cum = 0;
    const auto &buckets = all.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        cum += buckets[i];
        std::uint64_t upper = i == 0 ? 0 : (1ull << i) - 1;
        cdf.row().cell(upper).cellPct(
            percent(static_cast<double>(cum),
                    static_cast<double>(all.count())));
    }
    cdf.print();
    return 0;
}
