/**
 * @file
 * A2 -- maximum-chunk-size ablation: the chunk-size counter width
 * trades log rate against hardware state. Small limits flood the log;
 * beyond the natural trap/conflict-bounded chunk length the limit
 * stops mattering.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("A2", "max chunk size vs log rate");
    const char *names[] = {"fft", "barnes", "water-nsq"};
    Table t({"benchmark", "max chunk", "chunks", "mean size",
             "overflow %", "memlog B/KI"});
    for (const char *name : names) {
        Workload w = makeByName(name, benchThreads, benchScale);
        for (std::uint32_t limit : {1024u, 4096u, 16384u, 65536u,
                                    262144u, 1048576u}) {
            RecorderConfig rcfg = benchRecorder();
            rcfg.rnr.maxChunkInstrs = limit;
            RecordResult rec = recordProgram(w.program, benchMachine(),
                                             rcfg);
            const RunMetrics &m = rec.metrics;
            t.row().cell(name).cell(static_cast<std::uint64_t>(limit))
                .cell(m.chunks).cell(m.chunkSizes.mean(), 1)
                .cellPct(percent(
                    static_cast<double>(m.reasonCounts[static_cast<int>(
                        ChunkReason::SizeOverflow)]),
                    static_cast<double>(m.chunks)))
                .cell(m.memLogBytesPerKiloInstr(), 3);
        }
    }
    t.print();
    return 0;
}
