/**
 * @file
 * E4 -- where the software overhead goes. The first column is the
 * wall-clock overhead (as in E3); the remaining columns attribute the
 * recording software's *work* (cycles charged across all cores) to
 * Capo3 components, as shares of the total recording work.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E4", "software-overhead attribution");
    std::vector<std::string> headers = {"benchmark", "wall ovh%"};
    for (int c = 0; c < numOverheadCats; ++c)
        headers.push_back(overheadCatName(static_cast<OverheadCat>(c)));
    Table t(headers);
    forEachWorkload([&](const Workload &w) {
        RunMetrics base = runBaseline(w.program, benchMachine());
        RecordResult rec = recordProgram(w.program, benchMachine(),
                                         benchRecorder());
        double wall = percent(
            static_cast<double>(rec.metrics.cycles) -
                static_cast<double>(base.cycles),
            static_cast<double>(base.cycles));
        t.row().cell(w.name).cellPct(wall);
        auto total =
            static_cast<double>(rec.metrics.recordingOverheadCycles);
        for (int c = 0; c < numOverheadCats; ++c)
            t.cellPct(percent(
                static_cast<double>(rec.metrics.overheadCycles[c]),
                total), 1);
    });
    t.print();
    std::printf("\nShape check vs paper: kernel-entry interception and "
                "log management dominate;\nthe chunk (CBUF) path is "
                "significant only for conflict-dense workloads; the\n"
                "hardware itself contributes nothing here.\n");
    return 0;
}
