/**
 * @file
 * A4 -- CBUF sizing ablation: a small chunk buffer forces frequent
 * drain interrupts (and, at the extreme, full-buffer backpressure);
 * a large one amortizes the drain cost. Measures the drain component
 * of the software overhead across CBUF capacities.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("A4", "CBUF capacity vs drain overhead");
    const char *names[] = {"radix", "radiosity"};
    Table t({"benchmark", "cbuf entries", "drains", "forced",
             "drain cyc", "drain ovh%"});
    for (const char *name : names) {
        Workload w = makeByName(name, benchThreads, benchScale);
        RunMetrics base = runBaseline(w.program, benchMachine());
        for (std::uint32_t entries : {64u, 256u, 1024u, 4096u, 16384u,
                                      65536u}) {
            RecorderConfig rcfg = benchRecorder();
            rcfg.cbuf.entries = entries;
            RecordResult rec = recordProgram(w.program, benchMachine(),
                                             rcfg);
            const RunMetrics &m = rec.metrics;
            std::uint64_t drainCyc = m.overheadCycles[static_cast<int>(
                OverheadCat::CbufDrain)];
            t.row().cell(name)
                .cell(static_cast<std::uint64_t>(entries))
                .cell(m.cbufDrains).cell(m.cbufForcedDrains)
                .cell(drainCyc)
                .cellPct(percent(static_cast<double>(drainCyc),
                                 static_cast<double>(base.cycles)), 2);
        }
    }
    t.print();
    return 0;
}
