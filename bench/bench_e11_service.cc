/**
 * @file
 * E11 -- qrecd service throughput: end-to-end spheres per host second
 * through RecordService (admission -> sharded recording -> retried
 * QSG1 persistence -> retention), swept over the worker-shard count.
 * A second pass repeats the sweep's largest shape under the standard
 * chaos spec to price fault-handling: retries, torn-left salvage and
 * the repair loop all run on the clock.
 *
 * Two invariants are enforced here, not just reported: the ledger
 * must close (service.unaccounted == 0) on every run, and the chaos
 * pass must end -- after one repair sweep -- with zero unsealed
 * artifacts in the store. Either failure exits nonzero, so the bench
 * doubles as a quick service smoke. Emits BENCH_SERVICE.json
 * (schema v2) with per-shape spheres_per_sec, saved bytes/s and the
 * terminal-state counts.
 *
 * Spheres are small racy-counter recordings (the service cost under
 * test is queueing + persistence + rotation, not simulation), scaled
 * by QR_BENCH_SCALE like every other bench.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "common.hh"
#include "service/service.hh"
#include "workloads/micro.hh"

using namespace qr;

namespace
{

/** Fresh scratch store under /tmp, wiped on construction and exit. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const std::string &name)
        : path("/tmp/qr_bench_service_" + name)
    {
        wipe();
    }

    ~ScratchDir() { wipe(); }

    void wipe()
    {
        DIR *d = ::opendir(path.c_str());
        if (d) {
            while (struct dirent *e = ::readdir(d)) {
                std::string n = e->d_name;
                if (n != "." && n != "..")
                    ::unlink((path + "/" + n).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(path.c_str());
    }
};

SphereRequest
benchSphere(int iters)
{
    Workload w = makeRacyCounter(2, iters, false);
    SphereRequest req;
    req.workload = w.name;
    req.threads = 2;
    req.scale = 1;
    req.program = w.program;
    return req;
}

struct RunResult
{
    double secs = 0.0;
    std::uint64_t savedBytes = 0;
    ServiceCounters ctr;
    std::uint64_t unaccounted = 0;
    std::size_t unsealedAfterRepair = 0;
};

/** Drive @p spheres submissions through a service with @p workers
 *  shards; wall-clock covers submit through waitIdle + shutdown. */
RunResult
driveFleet(int workers, int spheres, const std::string &faults,
           const std::string &tag)
{
    ScratchDir dir(tag);
    ServiceConfig cfg;
    cfg.dir = dir.path;
    cfg.workers = workers;
    cfg.budgets.maxActive = workers;
    cfg.budgets.maxQueued = static_cast<std::uint64_t>(spheres);
    cfg.retention.maxArtifacts = static_cast<std::uint64_t>(spheres);
    cfg.faultSpec = faults;
    cfg.repairIntervalMs = 20;

    RunResult out;
    using clock = std::chrono::steady_clock;
    {
        RecordService svc(cfg);
        svc.start();
        auto t0 = clock::now();
        for (int i = 0; i < spheres; ++i)
            svc.submit(benchSphere(50 + (i % 7) * 10));
        svc.waitIdle();
        svc.repairNow(); // salvage anything chaos left torn
        svc.shutdown();
        out.secs =
            std::chrono::duration<double>(clock::now() - t0).count();
        out.ctr = svc.counters();
        StatsSnapshot snap = svc.snapshot();
        for (const StatScalar &s : snap.scalars) {
            if (s.name == "service.unaccounted")
                out.unaccounted =
                    static_cast<std::uint64_t>(s.value);
            if (s.name == "service.store.bytes")
                out.savedBytes =
                    static_cast<std::uint64_t>(s.value);
        }
        out.unsealedAfterRepair = svc.store().scan().unsealed.size();
    }
    return out;
}

} // namespace

int
main()
{
    benchHeader("SERVICE",
                "qrecd throughput: spheres/s end-to-end vs worker "
                "shards, clean and under chaos");
    BenchJson json("SERVICE");
    Table t({"shape", "spheres", "saved", "torn", "lost", "retried",
             "spheres/s", "KB/s saved"});

    const int spheres = 8 * benchScaleEff();
    const std::string chaos =
        "io-torn@0.1,io-enospc@0.05,drain-fail@0.1,cbuf-drop@0.02";
    bool ok = true;

    auto report = [&](const std::string &shape, const RunResult &r) {
        double sps = r.secs > 0 ? r.ctr.saved / r.secs : 0.0;
        double kbps =
            r.secs > 0 ? r.savedBytes / r.secs / 1024.0 : 0.0;
        t.row().cell(shape).cell(r.ctr.submitted).cell(r.ctr.saved)
            .cell(r.ctr.saveTornLeft).cell(r.ctr.saveLost)
            .cell(r.ctr.saveRetries).cell(sps, 1).cell(kbps, 1);
        json.add(shape, "spheres_per_sec", sps);
        json.add(shape, "saved_kb_per_sec", kbps);
        json.add(shape, "saved", static_cast<double>(r.ctr.saved));
        json.add(shape, "save_retries",
                 static_cast<double>(r.ctr.saveRetries));
        if (r.unaccounted != 0) {
            std::fprintf(stderr,
                         "FAIL: %s left %llu spheres unaccounted\n",
                         shape.c_str(),
                         static_cast<unsigned long long>(
                             r.unaccounted));
            ok = false;
        }
        if (r.unsealedAfterRepair != 0) {
            std::fprintf(stderr,
                         "FAIL: %s left %zu unsealed artifacts after "
                         "repair\n",
                         shape.c_str(), r.unsealedAfterRepair);
            ok = false;
        }
    };

    for (int workers : {1, 2, 4}) {
        std::string shape = "clean-w" + std::to_string(workers);
        report(shape, driveFleet(workers, spheres, "", shape));
    }
    report("chaos-w4", driveFleet(4, spheres, chaos, "chaos-w4"));

    t.print();
    benchJsonEmit(json);
    if (ok)
        std::printf("\nledger closed and store sealed on every "
                    "shape\n");
    return ok ? 0 : 1;
}
