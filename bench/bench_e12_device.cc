/**
 * @file
 * E12 -- device-class nondeterminism: the logged bus agents
 * (`src/bus/`) must make DMA-style device writes replayable at the
 * same bar as core execution. Four workloads, four claims:
 *
 *  - packet-ingest / storage-completion: every delivered completion is
 *    logged, the serialized device section costs a handful of bytes
 *    per event (the payload is regenerated from (seed, seq), never
 *    stored), and sequential + parallel replay re-inject every event
 *    with bit-identical digests.
 *  - device-race-racy / device-race-clean: the device pass flags the
 *    planted unsynchronized ring read on the racy twin and nothing on
 *    the clean twin, which still shows device/core conflict edges
 *    (they are all doorbell-ordered).
 *
 * The bench enforces each claim itself and exits nonzero on a
 * violation; the rows also land in BENCH_DEVICE.json so
 * tools/check_bench_device.cmake can re-derive them from the artifact
 * in CI.
 */

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "analyze/race_analyzer.hh"
#include "bus/device_stream.hh"
#include "common.hh"
#include "workloads/device.hh"

using namespace qr;

namespace
{

int failures = 0;

void
require(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "E12 FAIL: %s\n", what);
        ++failures;
    }
}

/** Record @p w with the one bus agent its device spec declares. */
RecordResult
recordDevice(const Workload &w, bool exact)
{
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = exact;
    BusAgentConfig a;
    a.agentId = 0;
    a.kind = w.device.kind;
    a.ringBase = w.device.ringBase;
    a.slotWords = w.device.slotWords;
    a.slots = w.device.slots;
    a.doorbell = w.device.doorbell;
    a.count = w.device.count;
    a.rate = w.device.rate;
    rcfg.devices.push_back(a);
    return recordProgram(w.program, {}, rcfg);
}

/** Serialized bytes the device section adds on top of the v2 layout. */
std::uint64_t
deviceSectionBytes(const SphereLogs &logs)
{
    SphereLogs trimmed = logs;
    trimmed.devices.clear();
    return logs.serialize().size() - trimmed.serialize().size();
}

} // namespace

int
main()
{
    benchHeader("E12", "device-class nondeterminism (logged bus agents)");
    BenchJson json("DEVICE");

    // --- consumers: log cost + replay injection -------------------------
    for (const Workload &w : {makePacketIngest(benchThreads, benchScaleEff()),
                              makeStorageCompletion(benchThreads,
                                                    benchScaleEff())}) {
        RecordResult rec = recordDevice(w, false);
        const std::uint64_t events = rec.metrics.deviceEvents;
        const std::uint64_t sectionBytes = deviceSectionBytes(rec.logs);
        require(events == w.device.count,
                "agent delivered every declared completion");
        require(sectionBytes > 0, "device section serialized");

        ReplayComparison cmp = compareReplay(w.program, rec.logs, 4);
        require(cmp.sequential.ok, "sequential replay ok");
        require(cmp.identical, "parallel replay bit-identical at 4 jobs");
        require(cmp.sequential.injectedDeviceEvents == events,
                "sequential replay injected every event");
        require(cmp.parallel.replay.injectedDeviceEvents == events,
                "parallel replay injected every event");

        std::printf("%-20s %6llu events  %5llu B section (%4.1f B/event)"
                    "  injected %llu/%llu  identical=%d\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(sectionBytes),
                    events ? static_cast<double>(sectionBytes) /
                                 static_cast<double>(events)
                           : 0.0,
                    static_cast<unsigned long long>(
                        cmp.sequential.injectedDeviceEvents),
                    static_cast<unsigned long long>(events),
                    cmp.identical ? 1 : 0);

        json.add(w.name, "device.events",
                 static_cast<double>(events));
        json.add(w.name, "device.bus_txns",
                 static_cast<double>(rec.metrics.deviceBusTxns));
        json.add(w.name, "device.stream_bytes",
                 static_cast<double>(sectionBytes));
        json.add(w.name, "replay.injected",
                 static_cast<double>(
                     cmp.sequential.injectedDeviceEvents));
        json.add(w.name, "replay.parallel_identical",
                 cmp.identical ? 1.0 : 0.0);
    }

    // --- ground-truth twins: the device pass ----------------------------
    std::printf("\n");
    for (bool racy : {true, false}) {
        Addr planted = 0;
        Workload w = makeDeviceRaceDemo(2, racy, &planted);
        RecordResult rec = recordDevice(w, /*exact=*/true);
        RaceReport rep = analyzeSphere(rec.logs);

        bool plantedOnly = true;
        for (const DeviceRace &r : rep.deviceRaces)
            if (r.line != planted)
                plantedOnly = false;
        if (racy) {
            require(!rep.deviceRaces.empty(),
                    "racy twin reports a device race");
            require(plantedOnly,
                    "racy twin races confined to the planted line");
        } else {
            require(rep.deviceRaces.empty(),
                    "clean twin reports no device race");
            require(rep.deviceEdges > 0,
                    "clean twin still has (ordered) device edges");
        }

        std::printf("%-20s device races %zu  device edges %llu%s\n",
                    w.name.c_str(), rep.deviceRaces.size(),
                    static_cast<unsigned long long>(rep.deviceEdges),
                    racy ? "  (planted line confirmed)" : "");

        json.add(w.name, "analyze.device_races",
                 static_cast<double>(rep.deviceRaces.size()));
        json.add(w.name, "analyze.device_edges",
                 static_cast<double>(rep.deviceEdges));
    }

    benchJsonEmit(json);
    if (failures) {
        std::fprintf(stderr, "E12: %d invariant(s) violated\n", failures);
        return 1;
    }
    return 0;
}
