/**
 * @file
 * Shared configuration for the experiment-reproduction benchmarks.
 *
 * Every bench uses the same paper-mirroring platform (4 cores, 32 KB
 * L1s, MESI bus, TSO, QuickRec defaults) and the same workload scale,
 * so numbers are comparable across experiments. Per the paper, the
 * QuickIA prototype clocks at 60 MHz; byte/s rates are reported at
 * that frequency.
 *
 * Environment overrides (the perf harness and the CTest smoke entry
 * drive these; unset means full-suite defaults):
 *
 *   QR_BENCH_SCALE      problem-size multiplier (default 4)
 *   QR_BENCH_WORKLOADS  comma-separated workload-name filter
 *   QR_BENCH_MIN_SECS   min measured host seconds per timing sample
 *   QR_BENCH_JSON_DIR   where BenchJson::write() puts BENCH_<id>.json
 */

#ifndef QR_BENCH_COMMON_HH
#define QR_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "core/session.hh"
#include "obs/profile.hh"
#include "obs/stats_export.hh"
#include "sim/bench_json.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/workload.hh"

namespace qr
{

/** Threads per workload, as in the paper's 4-core evaluation. */
constexpr int benchThreads = 4;

/** Problem-size multiplier for the suite. */
constexpr int benchScale = 4;

/** QuickIA core clock, for converting cycles to seconds. */
constexpr double benchClockHz = 60e6;

/** Effective problem-size multiplier (QR_BENCH_SCALE override). */
inline int
benchScaleEff()
{
    if (const char *s = std::getenv("QR_BENCH_SCALE")) {
        int v = std::atoi(s);
        if (v > 0)
            return v;
    }
    return benchScale;
}

inline MachineConfig
benchMachine()
{
    MachineConfig mcfg;
    mcfg.numCores = 4;
    mcfg.memBytes = 16u << 20;
    mcfg.core.timeslice = 20000;
    return mcfg;
}

inline RecorderConfig
benchRecorder()
{
    return RecorderConfig{};
}

/** RecorderConfig with all software costs zeroed: isolates the
 *  hardware-only recording overhead (the paper's "HW" bars). */
inline RecorderConfig
benchRecorderHwOnly()
{
    RecorderConfig rcfg;
    rcfg.costs = CostModel{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    return rcfg;
}

/** @return true if @p name passes the QR_BENCH_WORKLOADS filter. */
inline bool
benchWorkloadSelected(const std::string &name)
{
    const char *filter = std::getenv("QR_BENCH_WORKLOADS");
    if (!filter || !*filter)
        return true;
    std::string list(filter);
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        if (list.compare(pos, comma - pos, name) == 0)
            return true;
        pos = comma + 1;
    }
    return false;
}

/** Run @p fn for every selected suite workload. */
inline void
forEachWorkload(const std::function<void(const Workload &)> &fn,
                int scale = 0)
{
    if (scale <= 0)
        scale = benchScaleEff();
    for (const auto &spec : splash2Suite()) {
        if (!benchWorkloadSelected(spec.name))
            continue;
        fn(spec.make(benchThreads, scale));
    }
}

/**
 * Measure the steady-state rate of @p run (which returns simulated
 * instructions): repeat until at least QR_BENCH_MIN_SECS (default
 * 0.25 s) of host time has accumulated so a single short run's timing
 * noise cannot dominate, then return simulated M-instr per host
 * second.
 */
inline double
benchMips(const std::function<std::uint64_t()> &run)
{
    using clock = std::chrono::steady_clock;
    double minSecs = 0.25;
    if (const char *s = std::getenv("QR_BENCH_MIN_SECS")) {
        double v = std::atof(s);
        if (v >= 0.0)
            minSecs = v;
    }
    std::uint64_t instrs = 0;
    double secs = 0.0;
    do {
        auto t0 = clock::now();
        instrs += run();
        secs += std::chrono::duration<double>(clock::now() - t0).count();
    } while (secs < minSecs);
    return secs > 0 ? static_cast<double>(instrs) / secs / 1e6 : 0.0;
}

/** Print a bench header. */
inline void
benchHeader(const char *id, const char *title)
{
    std::printf("\n=== %s: %s ===\n", id, title);
    std::printf("platform: 4 cores, 32KB 4-way L1, 64B lines, MESI bus, "
                "TSO SB depth 8; scale=%d\n\n", benchScaleEff());
}

/**
 * Write @p json as BENCH_<id>.json and report where it went. The
 * profiler's per-phase totals (record loop, CBUF drains, graph build,
 * replay execution) accumulated over the whole bench run are attached
 * as the schema-v2 "stats" section, so every emitted file can
 * attribute host time per phase.
 */
inline void
benchJsonEmit(BenchJson &json)
{
    StatsSnapshot snap;
    profileSnapshotInto(snap);
    for (const StatScalar &s : snap.scalars)
        json.addStat(s.name, s.value);
    std::string path = json.write();
    if (path.empty())
        std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                     json.document().bench.c_str());
    else
        std::printf("\nwrote %s\n", path.c_str());
}

} // namespace qr

#endif // QR_BENCH_COMMON_HH
