/**
 * @file
 * Shared configuration for the experiment-reproduction benchmarks.
 *
 * Every bench uses the same paper-mirroring platform (4 cores, 32 KB
 * L1s, MESI bus, TSO, QuickRec defaults) and the same workload scale,
 * so numbers are comparable across experiments. Per the paper, the
 * QuickIA prototype clocks at 60 MHz; byte/s rates are reported at
 * that frequency.
 */

#ifndef QR_BENCH_COMMON_HH
#define QR_BENCH_COMMON_HH

#include <cstdio>
#include <functional>

#include "core/session.hh"
#include "sim/table.hh"
#include "workloads/workload.hh"

namespace qr
{

/** Threads per workload, as in the paper's 4-core evaluation. */
constexpr int benchThreads = 4;

/** Problem-size multiplier for the suite. */
constexpr int benchScale = 4;

/** QuickIA core clock, for converting cycles to seconds. */
constexpr double benchClockHz = 60e6;

inline MachineConfig
benchMachine()
{
    MachineConfig mcfg;
    mcfg.numCores = 4;
    mcfg.memBytes = 16u << 20;
    mcfg.core.timeslice = 20000;
    return mcfg;
}

inline RecorderConfig
benchRecorder()
{
    return RecorderConfig{};
}

/** RecorderConfig with all software costs zeroed: isolates the
 *  hardware-only recording overhead (the paper's "HW" bars). */
inline RecorderConfig
benchRecorderHwOnly()
{
    RecorderConfig rcfg;
    rcfg.costs = CostModel{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    return rcfg;
}

/** Run @p fn for every suite workload. */
inline void
forEachWorkload(const std::function<void(const Workload &)> &fn,
                int scale = benchScale)
{
    for (const auto &spec : splash2Suite())
        fn(spec.make(benchThreads, scale));
}

/** Print a bench header. */
inline void
benchHeader(const char *id, const char *title)
{
    std::printf("\n=== %s: %s ===\n", id, title);
    std::printf("platform: 4 cores, 32KB 4-way L1, 64B lines, MESI bus, "
                "TSO SB depth 8; scale=%d\n\n", benchScale);
}

} // namespace qr

#endif // QR_BENCH_COMMON_HH
