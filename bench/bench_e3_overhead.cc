/**
 * @file
 * E3 -- the headline recording-overhead experiment. For every
 * workload: baseline execution time, hardware-only recording (software
 * stack free), and full Capo3 recording. The paper's result: hardware
 * overhead is negligible while the software stack averages ~13%.
 */

#include <vector>

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E3", "recording overhead: baseline vs HW-only vs full "
                      "stack (paper: HW ~0%, full ~13% avg)");
    BenchJson json("E3");
    Table t({"benchmark", "base cycles", "hw-only", "full rec",
             "hw ovh%", "full ovh%"});
    std::vector<double> hwRatios, fullRatios;
    forEachWorkload([&](const Workload &w) {
        RunMetrics base = runBaseline(w.program, benchMachine());
        RecordResult hw = recordProgram(w.program, benchMachine(),
                                        benchRecorderHwOnly());
        RecordResult full = recordProgram(w.program, benchMachine(),
                                          benchRecorder());
        double hwOvh = percent(
            static_cast<double>(hw.metrics.cycles) -
                static_cast<double>(base.cycles),
            static_cast<double>(base.cycles));
        double fullOvh = percent(
            static_cast<double>(full.metrics.cycles) -
                static_cast<double>(base.cycles),
            static_cast<double>(base.cycles));
        hwRatios.push_back(static_cast<double>(hw.metrics.cycles) /
                           static_cast<double>(base.cycles));
        fullRatios.push_back(static_cast<double>(full.metrics.cycles) /
                             static_cast<double>(base.cycles));
        t.row().cell(w.name).cell(base.cycles).cell(hw.metrics.cycles)
            .cell(full.metrics.cycles).cellPct(hwOvh).cellPct(fullOvh);
        json.add(w.name, "hw_overhead_pct", hwOvh);
        json.add(w.name, "full_overhead_pct", fullOvh);
    });
    if (!hwRatios.empty()) {
        double gHw = (geomean(hwRatios) - 1.0) * 100.0;
        double gFull = (geomean(fullRatios) - 1.0) * 100.0;
        t.row().cell("geomean").cell("").cell("").cell("")
            .cellPct(gHw).cellPct(gFull);
        json.add("geomean", "hw_overhead_pct", gHw);
        json.add("geomean", "full_overhead_pct", gFull);
    }
    t.print();
    benchJsonEmit(json);
    std::printf("\nShape check vs paper: hw-only overhead should be "
                "near zero;\nfull-stack overhead should average in the "
                "~10-15%% band with\nkernel-interaction-heavy workloads "
                "(radiosity) well above it.\n");
    return 0;
}
