/**
 * @file
 * E2 -- benchmark characterization table: dynamic instruction counts,
 * memory-operation mix, synchronization and kernel interaction of the
 * ten SPLASH-2-analog workloads (baseline runs, no recording).
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E2", "workload characterization (baseline)");
    Table t({"benchmark", "params", "instrs", "loads%", "stores%",
             "atomics", "syscalls", "ctxsw", "cycles", "L1 miss%"});
    forEachWorkload([&](const Workload &w) {
        RunMetrics m = runBaseline(w.program, benchMachine());
        t.row().cell(w.name).cell(w.params).cell(m.instrs)
            .cellPct(percent(static_cast<double>(m.loads),
                             static_cast<double>(m.instrs)))
            .cellPct(percent(static_cast<double>(m.stores),
                             static_cast<double>(m.instrs)))
            .cell(m.atomics).cell(m.syscalls).cell(m.contextSwitches)
            .cell(m.cycles)
            .cellPct(percent(static_cast<double>(m.l1Misses),
                             static_cast<double>(m.l1Hits + m.l1Misses)));
    });
    t.print();
    return 0;
}
