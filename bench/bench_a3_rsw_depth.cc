/**
 * @file
 * A3 -- store-buffer-depth ablation: RSW exists because TSO lets
 * retired stores linger in the store buffer. Depth 1 is nearly
 * sequential consistency (RSW collapses); deeper buffers raise both
 * the frequency and the size of nonzero windows. Replay must stay
 * bit-exact at every depth.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("A3", "store-buffer depth vs RSW (and replay check)");
    const char *names[] = {"radix", "ocean", "pingpong-like: fft"};
    (void)names;
    Table t({"benchmark", "sb depth", "chunks", "rsw>0 %", "mean rsw",
             "max rsw", "replay"});
    for (const char *name : {"radix", "ocean", "fft"}) {
        Workload w = makeByName(name, benchThreads, benchScale);
        for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
            MachineConfig mcfg = benchMachine();
            mcfg.core.sbDepth = depth;
            RoundTrip rt = recordAndReplay(w.program, mcfg,
                                           benchRecorder());
            const RunMetrics &m = rt.record.metrics;
            t.row().cell(name).cell(static_cast<std::uint64_t>(depth))
                .cell(m.chunks)
                .cellPct(percent(static_cast<double>(m.rswNonZero),
                                 static_cast<double>(m.chunks)))
                .cell(m.rswValues.mean(), 3).cell(m.rswValues.max())
                .cell(rt.deterministic() ? "ok" : "FAIL");
        }
    }
    t.print();
    return 0;
}
