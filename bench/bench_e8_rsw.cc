/**
 * @file
 * E8 -- TSO characterization: how often chunks end with retired but
 * not-yet-visible stores (RSW > 0, the CoreRacer reordered store
 * window), and how large the window gets. This is the state a
 * sequentially-consistent recorder could not reproduce.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E8", "reordered store window (RSW) at chunk "
                      "termination");
    Table t({"benchmark", "chunks", "rsw>0", "rsw>0 %", "mean rsw",
             "max rsw"});
    std::uint64_t totChunks = 0, totNz = 0;
    forEachWorkload([&](const Workload &w) {
        RecordResult rec = recordProgram(w.program, benchMachine(),
                                         benchRecorder());
        const RunMetrics &m = rec.metrics;
        t.row().cell(w.name).cell(m.chunks).cell(m.rswNonZero)
            .cellPct(percent(static_cast<double>(m.rswNonZero),
                             static_cast<double>(m.chunks)))
            .cell(m.rswValues.mean(), 3).cell(m.rswValues.max());
        totChunks += m.chunks;
        totNz += m.rswNonZero;
    });
    t.row().cell("all").cell(totChunks).cell(totNz)
        .cellPct(percent(static_cast<double>(totNz),
                         static_cast<double>(totChunks)))
        .cell("").cell("");
    t.print();
    std::printf("\nNote: syscall/timer/context-switch terminations "
                "drain the store buffer\n(serializing kernel entry), so "
                "only conflict- and overflow-terminated chunks\ncan "
                "carry RSW > 0. See bench_a3 for the store-buffer-depth "
                "sweep.\n");
    return 0;
}
