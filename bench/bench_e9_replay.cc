/**
 * @file
 * E9 -- replay validation: every recorded sphere must replay with
 * bit-exact digests (the paper validated every log with a Pin-based
 * replayer). Also reports the modeled sequential-replay slowdown
 * relative to the parallel recorded run.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E9", "replay validation and replay speed");
    Table t({"benchmark", "replayed", "digests", "chunks", "injected",
             "replay/record time"});
    int failures = 0;
    forEachWorkload([&](const Workload &w) {
        RoundTrip rt = recordAndReplay(w.program, benchMachine(),
                                       benchRecorder());
        bool ok = rt.deterministic();
        if (!ok)
            failures++;
        t.row().cell(w.name).cell(rt.replay.ok ? "ok" : "DIVERGED")
            .cell(rt.verify.ok ? "match" : "MISMATCH")
            .cell(rt.replay.replayedChunks)
            .cell(rt.replay.injectedRecords)
            .cell(ratio(static_cast<double>(rt.replay.modeledCycles),
                        static_cast<double>(rt.record.metrics.cycles)),
                  2);
        if (!rt.replay.ok)
            std::printf("  divergence(%s): %s\n", w.name.c_str(),
                        rt.replay.divergence.c_str());
    });
    t.print();
    std::printf("\n%s\n", failures == 0
        ? "All recordings replayed deterministically."
        : "REPLAY FAILURES DETECTED -- see above.");
    return failures == 0 ? 0 : 1;
}
