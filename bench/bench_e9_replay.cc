/**
 * @file
 * E9 -- replay validation and replay speed: every recorded sphere must
 * replay with bit-exact digests (the paper validated every log with a
 * Pin-based replayer), on the sequential oracle AND on the parallel
 * chunk-graph engine. Reports the modeled sequential-replay slowdown
 * relative to the parallel recorded run, the modeled speedup of
 * chunk-graph replay at 2/4 jobs plus the DAG's available parallelism
 * (critical-path bound), and -- now that the workers are real threads
 * -- the *measured* wall-clock speedup at 4 jobs. Modeled and measured
 * land in BENCH_E9.json as distinct metrics (replay.modeled_speedup vs
 * replay.measured_speedup); on a single-core host the measured number
 * is honestly <= 1, the modeled number shows what the DAG affords.
 */

#include <cmath>

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E9", "replay validation and replay speed");
    BenchJson json("E9");
    Table t({"benchmark", "replayed", "digests", "par-digests", "chunks",
             "edges", "replay/record", "speedup@2", "speedup@4",
             "measured@4", "par-avail"});
    int failures = 0;
    double logSpeedup4 = 0, logAvail = 0, logMeasured4 = 0;
    int n = 0, nMeasured = 0;
    forEachWorkload([&](const Workload &w) {
        RoundTrip rt = recordAndReplay(w.program, benchMachine(),
                                       benchRecorder());
        ParallelReplayResult p2 =
            replaySphereParallel(w.program, rt.record.logs, 2);
        ParallelReplayResult p4 =
            replaySphereParallel(w.program, rt.record.logs, 4);
        // The sequential oracle already ran inside recordAndReplay;
        // its exec wall time completes the measured-speedup ratio.
        p2.speed.seqExecMicros = rt.replay.execMicros;
        p4.speed.seqExecMicros = rt.replay.execMicros;
        bool parOk = p2.replay.ok && p4.replay.ok &&
                     p2.replay.digests == rt.replay.digests &&
                     p4.replay.digests == rt.replay.digests;
        bool ok = rt.deterministic() && parOk;
        if (!ok)
            failures++;
        t.row().cell(w.name).cell(rt.replay.ok ? "ok" : "DIVERGED")
            .cell(rt.verify.ok ? "match" : "MISMATCH")
            .cell(parOk ? "match" : "MISMATCH")
            .cell(rt.replay.replayedChunks)
            .cell(p4.graphEdges)
            .cell(ratio(static_cast<double>(rt.replay.modeledCycles),
                        static_cast<double>(rt.record.metrics.cycles)),
                  2)
            .cell(p2.speed.modeledSpeedup(), 2)
            .cell(p4.speed.modeledSpeedup(), 2)
            .cell(p4.speed.measuredSpeedup(), 2)
            .cell(p4.speed.availableParallelism(), 2);
        if (!rt.replay.ok)
            std::printf("  divergence(%s): %s\n", w.name.c_str(),
                        rt.replay.divergence.c_str());
        json.add(w.name, "replay.modeled_speedup",
                 p4.speed.modeledSpeedup());
        json.add(w.name, "replay.measured_speedup",
                 p4.speed.measuredSpeedup());
        json.add(w.name, "replay.available_parallelism",
                 p4.speed.availableParallelism());
        json.add(w.name, "replay.exec_micros", p4.speed.execMicros);
        json.add(w.name, "replay.seq_exec_micros",
                 p4.speed.seqExecMicros);
        if (p4.replay.ok) {
            logSpeedup4 += std::log(p4.speed.modeledSpeedup());
            logAvail += std::log(p4.speed.availableParallelism());
            n++;
            if (p4.speed.measuredSpeedup() > 0) {
                logMeasured4 += std::log(p4.speed.measuredSpeedup());
                nMeasured++;
            }
        }
    });
    t.print();
    if (n > 0) {
        double geoModeled = std::exp(logSpeedup4 / n);
        double geoMeasured =
            nMeasured > 0 ? std::exp(logMeasured4 / nMeasured) : 0.0;
        std::printf("\ngeomean modeled speedup at 4 jobs: %.2fx "
                    "(available parallelism %.2fx)\n",
                    geoModeled, std::exp(logAvail / n));
        std::printf("geomean measured speedup at 4 jobs: %.2fx "
                    "(wall-clock; bounded by the host's real cores)\n",
                    geoMeasured);
        json.add("geomean", "replay.modeled_speedup", geoModeled);
        json.add("geomean", "replay.measured_speedup", geoMeasured);
    }
    benchJsonEmit(json);
    std::printf("\n%s\n", failures == 0
        ? "All recordings replayed deterministically "
          "(sequential and parallel)."
        : "REPLAY FAILURES DETECTED -- see above.");
    return failures == 0 ? 0 : 1;
}
