/**
 * @file
 * E9 -- replay validation and replay speed: every recorded sphere must
 * replay with bit-exact digests (the paper validated every log with a
 * Pin-based replayer), on the sequential oracle AND on the parallel
 * chunk-graph engine. Reports the modeled sequential-replay slowdown
 * relative to the parallel recorded run, and the modeled speedup of
 * chunk-graph replay at 2/4 jobs plus the DAG's available parallelism
 * (critical-path bound).
 */

#include <cmath>

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E9", "replay validation and replay speed");
    Table t({"benchmark", "replayed", "digests", "par-digests", "chunks",
             "edges", "replay/record", "speedup@2", "speedup@4",
             "par-avail"});
    int failures = 0;
    double logSpeedup4 = 0, logAvail = 0;
    int n = 0;
    forEachWorkload([&](const Workload &w) {
        RoundTrip rt = recordAndReplay(w.program, benchMachine(),
                                       benchRecorder());
        ParallelReplayResult p2 =
            replaySphereParallel(w.program, rt.record.logs, 2);
        ParallelReplayResult p4 =
            replaySphereParallel(w.program, rt.record.logs, 4);
        bool parOk = p2.replay.ok && p4.replay.ok &&
                     p2.replay.digests == rt.replay.digests &&
                     p4.replay.digests == rt.replay.digests;
        bool ok = rt.deterministic() && parOk;
        if (!ok)
            failures++;
        t.row().cell(w.name).cell(rt.replay.ok ? "ok" : "DIVERGED")
            .cell(rt.verify.ok ? "match" : "MISMATCH")
            .cell(parOk ? "match" : "MISMATCH")
            .cell(rt.replay.replayedChunks)
            .cell(p4.graphEdges)
            .cell(ratio(static_cast<double>(rt.replay.modeledCycles),
                        static_cast<double>(rt.record.metrics.cycles)),
                  2)
            .cell(p2.speed.modeledSpeedup(), 2)
            .cell(p4.speed.modeledSpeedup(), 2)
            .cell(p4.speed.availableParallelism(), 2);
        if (!rt.replay.ok)
            std::printf("  divergence(%s): %s\n", w.name.c_str(),
                        rt.replay.divergence.c_str());
        if (p4.replay.ok) {
            logSpeedup4 += std::log(p4.speed.modeledSpeedup());
            logAvail += std::log(p4.speed.availableParallelism());
            n++;
        }
    });
    t.print();
    if (n > 0)
        std::printf("\ngeomean modeled speedup at 4 jobs: %.2fx "
                    "(available parallelism %.2fx)\n",
                    std::exp(logSpeedup4 / n), std::exp(logAvail / n));
    std::printf("\n%s\n", failures == 0
        ? "All recordings replayed deterministically "
          "(sequential and parallel)."
        : "REPLAY FAILURES DETECTED -- see above.");
    return failures == 0 ? 0 : 1;
}
