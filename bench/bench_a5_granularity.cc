/**
 * @file
 * A5 -- conflict-granularity ablation. The recorder tracks conflicts
 * at cache-line granularity; coarser tracking (a cheaper filter over
 * fewer distinct tags) stays sound but converts spatial locality into
 * false conflicts, shrinking chunks and inflating the log. Granularity
 * finer than the coherence line is unsound and rejected by the
 * configuration validator.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("A5", "conflict-tracking granularity vs chunking");
    Table t({"benchmark", "granularity B", "chunks", "mean chunk",
             "conflict %", "memlog B/KI"});
    for (const char *name : {"fft", "barnes", "ocean"}) {
        Workload w = makeByName(name, benchThreads, benchScale);
        for (std::uint32_t gran : {64u, 128u, 256u, 512u}) {
            RecorderConfig rcfg = benchRecorder();
            rcfg.rnr.lineBytes = gran;
            RecordResult rec = recordProgram(w.program, benchMachine(),
                                             rcfg);
            const RunMetrics &m = rec.metrics;
            t.row().cell(name).cell(static_cast<std::uint64_t>(gran))
                .cell(m.chunks).cell(m.chunkSizes.mean(), 1)
                .cellPct(m.conflictChunkFraction() * 100.0)
                .cell(m.memLogBytesPerKiloInstr(), 3);
        }
    }
    t.print();
    std::printf("\nExpected shape: coarser granularity -> more false "
                "conflicts -> smaller\nchunks and a denser log.\n");
    return 0;
}
