/**
 * @file
 * E7 -- why chunks terminate: conflicts (RAW/WAR/WAW) vs chunk-size
 * overflow vs traps (syscalls/timer) vs context switches, per
 * benchmark. In the paper, conflict terminations dominate only in
 * communication-heavy codes.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E7", "chunk-termination cause breakdown (% of "
                      "chunks)");
    std::vector<std::string> headers = {"benchmark", "chunks"};
    for (int r = 0; r < numChunkReasons; ++r)
        headers.push_back(chunkReasonName(static_cast<ChunkReason>(r)));
    Table t(headers);
    forEachWorkload([&](const Workload &w) {
        RecordResult rec = recordProgram(w.program, benchMachine(),
                                         benchRecorder());
        const RunMetrics &m = rec.metrics;
        t.row().cell(w.name).cell(m.chunks);
        for (int r = 0; r < numChunkReasons; ++r)
            t.cellPct(percent(static_cast<double>(m.reasonCounts[r]),
                              static_cast<double>(m.chunks)), 1);
    });
    t.print();
    std::printf("\nShape check vs paper: conflicts dominate in "
                "sharing-heavy codes (radix,\npingpong-like patterns); "
                "elsewhere traps and timer interrupts bound chunks.\n");
    return 0;
}
