/**
 * @file
 * E10 -- streaming analysis at scale: the mmap + SphereCursor +
 * analyzeSphereStreaming pipeline must hold resident memory flat while
 * the sphere grows without bound. The sweep records a clean race-demo
 * sphere at 1x, 10x and 100x the chunk count of the *largest suite
 * sphere* (measured at the current bench settings), saves each to a
 * sealed container, mmaps it back and analyzes it through the cursor.
 *
 * The pass criterion mirrors the acceptance bar of the streaming
 * pipeline: the 100x sphere must really be >= 100x the 1x sphere in
 * chunks, and the analyzer's peak resident bytes at 100x must stay
 * within 2x of the 1x figure -- O(frontier), not O(sphere). Both
 * numbers land in BENCH_STREAM.json (schema v2) as analyze.* stats so
 * tools/check_bench_stream.cmake can hold the line in CI.
 *
 * The synthetic sphere uses a short hardware timeslice (1000 cycles
 * instead of the paper's 20000): E10 cares about chunk *count*, not
 * per-chunk weight, and the short slice makes a million-chunk sphere
 * recordable in seconds. Every other bench keeps the paper timeslice.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "analyze/race_analyzer.hh"
#include "capo/log_store.hh"
#include "capo/payload_view.hh"
#include "capo/sphere.hh"
#include "common.hh"
#include "workloads/micro.hh"

using namespace qr;

namespace
{

MachineConfig
streamMachine()
{
    MachineConfig mcfg = benchMachine();
    mcfg.core.timeslice = 1000;
    return mcfg;
}

/** Largest chunk count any selected suite workload records at the
 *  current bench settings (paper machine, effective scale). */
std::uint64_t
suiteMaxChunks(BenchJson &json)
{
    std::uint64_t maxChunks = 0;
    std::string maxName = "-";
    forEachWorkload([&](const Workload &w) {
        RecordResult rec =
            recordProgram(w.program, benchMachine(), benchRecorder());
        if (rec.metrics.chunks > maxChunks) {
            maxChunks = rec.metrics.chunks;
            maxName = w.name;
        }
        json.add(w.name, "analyze.suite_chunks",
                 static_cast<double>(rec.metrics.chunks));
    });
    if (maxChunks == 0) // empty QR_BENCH_WORKLOADS filter
        maxChunks = 1000;
    std::printf("largest suite sphere: %s, %llu chunks\n\n",
                maxName.c_str(),
                static_cast<unsigned long long>(maxChunks));
    json.add("suite-max", "analyze.suite_chunks",
             static_cast<double>(maxChunks));
    return maxChunks;
}

struct SweepPoint
{
    int scale = 0;
    std::uint64_t targetChunks = 0;
    std::uint64_t chunks = 0;
    std::uint64_t sphereBytes = 0;
    long long recordMs = 0;
    long long analyzeMs = 0;
    std::size_t races = 0;
    StreamStats stats;
};

/**
 * Record a race-demo sphere of at least @p target chunks (bump-retry:
 * chunk yield is linear in iterations, so one retry normally lands),
 * seal it to @p path, mmap it back and analyze it streaming.
 */
SweepPoint
runScale(int scale, std::uint64_t target, double &itersPerChunk,
         const std::string &path)
{
    using clock = std::chrono::steady_clock;
    SweepPoint pt;
    pt.scale = scale;
    pt.targetChunks = target;

    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = true;
    RecordResult rec;
    auto t0 = clock::now();
    for (int attempt = 0; attempt < 8; ++attempt) {
        auto iters =
            static_cast<int>(static_cast<double>(target) * itersPerChunk);
        Workload w = makeRaceDemo(benchThreads, iters, false);
        rec = recordProgram(w.program, streamMachine(), rcfg);
        if (rec.metrics.chunks >= target) {
            // Feed the measured yield forward so the next, larger
            // scale lands on its first attempt.
            itersPerChunk = static_cast<double>(iters) /
                            static_cast<double>(rec.metrics.chunks);
            break;
        }
        itersPerChunk *= rec.metrics.chunks > 0
            ? 1.15 * static_cast<double>(target) /
                  static_cast<double>(rec.metrics.chunks)
            : 2.0;
    }
    auto t1 = clock::now();
    pt.recordMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
            .count();
    pt.chunks = rec.metrics.chunks;

    SphereSaveResult saved = saveSphere(rec.logs, path);
    if (!saved.ok) {
        std::fprintf(stderr, "save failed: %s\n", saved.error.c_str());
        std::exit(1);
    }

    MappedSphereFile map;
    if (!map.open(path) || !map.canStream()) {
        std::fprintf(stderr, "mmap failed: %s\n", map.error().c_str());
        std::exit(1);
    }
    std::string bad = map.verifyAll();
    if (!bad.empty()) {
        std::fprintf(stderr, "verify failed: %s\n", bad.c_str());
        std::exit(1);
    }
    pt.sphereBytes = map.payloadBytes();

    SphereCursor cur{map.payload()};
    StreamOptions opt;
    opt.keepConflicts = false;
    auto t2 = clock::now();
    RaceReport rep = analyzeSphereStreaming(cur, opt, &pt.stats);
    auto t3 = clock::now();
    pt.analyzeMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(t3 - t2)
            .count();
    pt.races = rep.races.size();
    if (rep.nChunks != pt.chunks) {
        std::fprintf(stderr, "chunk mismatch: recorded %llu, analyzed "
                     "%llu\n",
                     static_cast<unsigned long long>(pt.chunks),
                     static_cast<unsigned long long>(rep.nChunks));
        std::exit(1);
    }
    return pt;
}

} // namespace

int
main()
{
    benchHeader("STREAM", "streaming mmap analysis at scale");
    BenchJson json("STREAM");

    std::uint64_t suiteMax = suiteMaxChunks(json);

    std::string dir = "/tmp";
    if (const char *t = std::getenv("TMPDIR"); t && *t)
        dir = t;
    std::string path = dir + "/bench_e10_stream." +
                       std::to_string(getpid()) + ".qrs";

    Table t({"scale", "target", "chunks", "bytes", "rec-ms",
             "analyze-ms", "peak-resident-B", "peak-live", "batches",
             "retired", "races"});
    std::vector<SweepPoint> pts;
    double itersPerChunk = 16.0; // refined by the first recording
    for (int scale : {1, 10, 100}) {
        SweepPoint pt = runScale(scale, suiteMax * scale, itersPerChunk,
                                 path);
        t.row()
            .cell(std::to_string(scale) + "x")
            .cell(pt.targetChunks)
            .cell(pt.chunks)
            .cell(pt.sphereBytes)
            .cell(static_cast<std::uint64_t>(pt.recordMs))
            .cell(static_cast<std::uint64_t>(pt.analyzeMs))
            .cell(pt.stats.peakResidentBytes)
            .cell(pt.stats.peakLiveChunks)
            .cell(pt.stats.windowBatches)
            .cell(pt.stats.retiredChunks)
            .cell(pt.races);
        std::string label = std::to_string(scale) + "x";
        json.add(label, "analyze.chunks",
                 static_cast<double>(pt.chunks));
        json.add(label, "analyze.sphere_bytes",
                 static_cast<double>(pt.sphereBytes));
        json.add(label, "analyze.wall_millis",
                 static_cast<double>(pt.analyzeMs));
        json.add(label, "analyze.peak_resident_bytes",
                 static_cast<double>(pt.stats.peakResidentBytes));
        json.add(label, "analyze.peak_live_chunks",
                 static_cast<double>(pt.stats.peakLiveChunks));
        json.add(label, "analyze.window_batches",
                 static_cast<double>(pt.stats.windowBatches));
        json.add(label, "analyze.retired_chunks",
                 static_cast<double>(pt.stats.retiredChunks));
        json.add(label, "analyze.evicted_payload_bytes",
                 static_cast<double>(pt.stats.evictedPayloadBytes));
        json.add(label, "analyze.races",
                 static_cast<double>(pt.races));
        pts.push_back(pt);
    }
    std::remove(path.c_str());
    t.print();

    const SweepPoint &p1 = pts.front();
    const SweepPoint &p100 = pts.back();
    double chunkRatio = p1.chunks
        ? static_cast<double>(p100.chunks) /
              static_cast<double>(p1.chunks)
        : 0.0;
    double memRatio = p1.stats.peakResidentBytes
        ? static_cast<double>(p100.stats.peakResidentBytes) /
              static_cast<double>(p1.stats.peakResidentBytes)
        : 0.0;
    std::printf("\n100x/1x: chunks %.1fx, peak resident %.2fx "
                "(flat-memory bar: <= 2x)\n",
                chunkRatio, memRatio);

    // The 100x run's resource accounting is the stats section: a flat
    // analyze.peak_resident_bytes here IS the perf claim of the PR.
    StatsSnapshot snap;
    p100.stats.statsInto(snap);
    for (const StatScalar &s : snap.scalars)
        json.addStat(s.name, s.value);
    json.addStat("analyze.mem_ratio_100x", memRatio);
    json.addStat("analyze.chunk_ratio_100x", chunkRatio);
    benchJsonEmit(json);

    bool ok = chunkRatio >= 100.0 && memRatio <= 2.0 && memRatio > 0.0;
    std::printf("\n%s\n",
                ok ? "Streaming analysis held resident memory flat "
                     "across a 100x sphere growth."
                   : "STREAMING MEMORY BAR MISSED -- see above.");
    return ok ? 0 : 1;
}
