/**
 * @file
 * M2 -- host-side practicality table: wall-clock throughput of the
 * whole stack (baseline simulation, recording, replay) per suite
 * workload, in simulated instructions per host second. Complements
 * M1's component microbenchmarks.
 */

#include <chrono>

#include "common.hh"

using namespace qr;

namespace
{

double
mips(std::uint64_t instrs, std::chrono::steady_clock::duration d)
{
    double secs = std::chrono::duration<double>(d).count();
    return secs > 0 ? static_cast<double>(instrs) / secs / 1e6 : 0.0;
}

} // namespace

int
main()
{
    benchHeader("M2", "host throughput: simulate / record / replay "
                      "(simulated M-instr per host second)");
    using clock = std::chrono::steady_clock;
    Table t({"benchmark", "instrs", "simulate MIPS", "record MIPS",
             "replay MIPS"});
    forEachWorkload([&](const Workload &w) {
        Workload base_w = makeByName(w.name, benchThreads, benchScale);
        auto t0 = clock::now();
        RunMetrics base = runBaseline(base_w.program, benchMachine());
        auto t1 = clock::now();
        RecordResult rec = recordProgram(w.program, benchMachine(),
                                         benchRecorder());
        auto t2 = clock::now();
        ReplayResult rep = replaySphere(w.program, rec.logs);
        auto t3 = clock::now();
        t.row().cell(w.name).cell(base.instrs)
            .cell(mips(base.instrs, t1 - t0), 1)
            .cell(mips(rec.metrics.instrs, t2 - t1), 1)
            .cell(mips(rep.replayedInstrs, t3 - t2), 1);
    });
    t.print();
    return 0;
}
