/**
 * @file
 * M2 -- host-side practicality table: wall-clock throughput of the
 * whole stack (baseline simulation, recording, replay) per suite
 * workload, in simulated instructions per host second. Complements
 * M1's component microbenchmarks.
 *
 * Each phase is timed with benchMips(), which repeats the run until a
 * minimum of host time has accumulated (QR_BENCH_MIN_SECS): individual
 * runs are tens of milliseconds, far too short for a single sample to
 * be trustworthy. Emits BENCH_M2.json with per-workload and geomean
 * simulate/record/replay MIPS (the record_mips geomean is the
 * record-path perf trajectory metric tracked in BENCH_RECORD.json).
 */

#include <vector>

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("M2", "host throughput: simulate / record / replay "
                      "(simulated M-instr per host second)");
    BenchJson json("M2");
    Table t({"benchmark", "instrs", "simulate MIPS", "record MIPS",
             "replay MIPS"});
    std::vector<double> sim, rec, rep;
    forEachWorkload([&](const Workload &w) {
        int scale = benchScaleEff();
        double simMips = benchMips([&] {
            Workload base_w = makeByName(w.name, benchThreads, scale);
            return runBaseline(base_w.program, benchMachine()).instrs;
        });
        RecordResult recorded; // last recording feeds the replay phase
        double recMips = benchMips([&] {
            recorded = recordProgram(w.program, benchMachine(),
                                     benchRecorder());
            return recorded.metrics.instrs;
        });
        double repMips = benchMips([&] {
            return replaySphere(w.program, recorded.logs).replayedInstrs;
        });
        sim.push_back(simMips);
        rec.push_back(recMips);
        rep.push_back(repMips);
        json.add(w.name, "simulate_mips", simMips);
        json.add(w.name, "record_mips", recMips);
        json.add(w.name, "replay_mips", repMips);
        t.row().cell(w.name).cell(recorded.metrics.instrs)
            .cell(simMips, 1).cell(recMips, 1).cell(repMips, 1);
    });
    if (!rec.empty()) {
        double gSim = geomean(sim), gRec = geomean(rec),
               gRep = geomean(rep);
        t.row().cell("geomean").cell("").cell(gSim, 1).cell(gRec, 1)
            .cell(gRep, 1);
        json.add("geomean", "simulate_mips", gSim);
        json.add("geomean", "record_mips", gRec);
        json.add("geomean", "replay_mips", gRep);
    }
    t.print();
    benchJsonEmit(json);
    return 0;
}
