/**
 * @file
 * A7 -- fault-injection degradation curve: how gracefully does the
 * recorder degrade as CBUF drain signals get lost? Sweeps the
 * cbuf-drop probability with an undersized CBUF (so backpressure
 * actually bites), records each workload under injection, then replays
 * the damaged sphere in degraded mode. Reports the fraction of chunks
 * that survive end-to-end, the gap markers that witness the losses,
 * and the extra recording cycles the fault paths cost.
 *
 * Emits BENCH_A7.json: per workload and drop rate,
 * recovered_frac@<rate>, gap_markers@<rate> and overhead_pct@<rate>
 * (recording cycles relative to the fault-free recording at the same
 * CBUF size).
 */

#include <vector>

#include "common.hh"
#include "sim/logging.hh"

using namespace qr;

namespace
{

/** Undersized CBUF so drain pressure is real at bench scale. */
constexpr std::uint32_t faultCbufEntries = 64;

RecorderConfig
faultRecorder(const std::string &spec, std::uint64_t seed)
{
    RecorderConfig rcfg = benchRecorder();
    rcfg.cbuf.entries = faultCbufEntries;
    rcfg.faults.spec = spec;
    rcfg.faults.seed = seed;
    return rcfg;
}

} // namespace

int
main()
{
    benchHeader("A7", "fault injection: degraded recording and replay "
                      "vs drain-signal loss rate");
    BenchJson json("A7");
    const char *names[] = {"radix", "radiosity"};
    const double rates[] = {0.0, 0.01, 0.1, 0.5, 0.9};
    Table t({"benchmark", "drop rate", "chunks", "dropped", "gaps",
             "recovered%", "overhead%"});
    for (const char *name : names) {
        Workload w = makeByName(name, benchThreads, benchScale);
        // Fault-free reference at the same CBUF size: the overhead
        // column isolates the fault paths, not the small buffer.
        RecordResult ref = recordProgram(w.program, benchMachine(),
                                         faultRecorder("", 1));
        std::uint64_t refChunks = ref.logs.totalChunks();
        for (double rate : rates) {
            std::string spec =
                rate > 0 ? csprintf("cbuf-drop@%g", rate) : "";
            RecordResult rec = recordProgram(w.program, benchMachine(),
                                             faultRecorder(spec, 7));
            const RunMetrics &m = rec.metrics;
            ReplayResult rep = replaySphere(w.program, rec.logs,
                                            ReplayMode::Degraded);
            if (!rep.ok)
                fatal("degraded replay failed for %s at rate %g",
                      name, rate);
            double recovered = refChunks
                ? percent(
                      static_cast<double>(rep.degraded.chunksReplayed),
                      static_cast<double>(refChunks))
                : 0.0;
            double overhead = ref.metrics.cycles
                ? percent(static_cast<double>(m.cycles)
                              - static_cast<double>(ref.metrics.cycles),
                          static_cast<double>(ref.metrics.cycles))
                : 0.0;
            t.row().cell(name).cell(rate, 2)
                .cell(m.logSizes.chunkRecords).cell(m.droppedChunks)
                .cell(m.gapChunks).cell(recovered, 1)
                .cellPct(overhead, 2);
            std::string tag = csprintf("@%g", rate);
            json.add(name, "recovered_frac" + tag, recovered / 100.0);
            json.add(name, "gap_markers" + tag,
                     static_cast<double>(m.gapChunks));
            json.add(name, "overhead_pct" + tag, overhead);
        }
    }
    t.print();
    benchJsonEmit(json);
    return 0;
}
