/**
 * @file
 * M1 -- microarchitecture-component throughput (google-benchmark):
 * the recorder's primitive operations (Bloom insert/test, chunk-record
 * packing, CBUF append+drain, bus snoop broadcast) and the end-to-end
 * simulator rate.
 */

#include <benchmark/benchmark.h>

#include "core/session.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "rnr/bloom.hh"
#include "rnr/cbuf.hh"
#include "rnr/chunk_record.hh"
#include "sim/rng.hh"
#include "workloads/micro.hh"

namespace
{

using namespace qr;

void
BM_BloomInsert(benchmark::State &state)
{
    BloomParams params;
    params.bits = static_cast<std::uint32_t>(state.range(0));
    BloomFilter filter(params);
    Rng rng(7);
    for (auto _ : state) {
        filter.insert(static_cast<Addr>(rng.next32()) & ~63u);
        if (filter.fill() > 4096)
            filter.clear();
    }
}
BENCHMARK(BM_BloomInsert)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_BloomTest(benchmark::State &state)
{
    BloomFilter filter(BloomParams{});
    Rng rng(7);
    for (int i = 0; i < 64; ++i)
        filter.insert(static_cast<Addr>(rng.next32()) & ~63u);
    bool hit = false;
    for (auto _ : state) {
        hit ^= filter.test(static_cast<Addr>(rng.next32()) & ~63u);
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_BloomTest);

void
BM_ChunkRecordPackCompact(benchmark::State &state)
{
    std::vector<std::uint8_t> buf;
    ChunkRecord rec{123456, 4096, 3, ChunkReason::ConflictRaw, 2};
    Timestamp prev = 123000;
    for (auto _ : state) {
        buf.clear();
        packCompact(rec, prev, buf);
        benchmark::DoNotOptimize(buf.data());
    }
}
BENCHMARK(BM_ChunkRecordPackCompact);

void
BM_CbufAppendDrain(benchmark::State &state)
{
    Memory mem(1u << 20);
    CbufParams params;
    params.entries = 1024;
    Cbuf cbuf(params, mem, 0, nullptr);
    ChunkRecord rec{1, 100, 0, ChunkReason::Syscall, 1};
    for (auto _ : state) {
        for (int i = 0; i < 512; ++i) {
            rec.ts++;
            cbuf.append(rec, 0);
        }
        auto recs = cbuf.drain();
        benchmark::DoNotOptimize(recs.data());
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CbufAppendDrain);

void
BM_BusTransact(benchmark::State &state)
{
    BusParams bp;
    Bus bus(bp);
    CacheParams cp;
    std::vector<std::unique_ptr<L1Cache>> caches;
    for (int i = 0; i < 4; ++i) {
        caches.push_back(std::make_unique<L1Cache>(i, cp, bus));
        bus.attachSnooper(caches.back().get());
    }
    Rng rng(3);
    Tick now = 0;
    for (auto _ : state) {
        BusTxn txn{BusOp::BusRd,
                   static_cast<Addr>(rng.next32() & 0xffffc0), 0, now};
        benchmark::DoNotOptimize(bus.transact(txn, now));
        now += 10;
    }
}
BENCHMARK(BM_BusTransact);

void
BM_SimulatorRate(benchmark::State &state)
{
    // End-to-end simulated-instructions-per-second, recording on.
    Workload w = makeRacyCounter(4, 2000, true);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        RecordResult rec = recordProgram(w.program);
        instrs += rec.metrics.instrs;
        benchmark::DoNotOptimize(rec.metrics.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_SimulatorRate)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
