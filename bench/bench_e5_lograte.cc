/**
 * @file
 * E5 -- log production rates. The paper's claim: the memory
 * (chunk) log rate is insignificant. Reports packed memory-log and
 * input-log bytes, bytes per kilo-instruction, and the production rate
 * in KB/s at the 60 MHz QuickIA clock.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("E5", "log production (paper: memory-log rate is "
                      "insignificant)");
    Table t({"benchmark", "chunks", "memlog B", "inlog B", "mem B/KI",
             "in B/KI", "mem KB/s", "in KB/s"});
    std::uint64_t totMem = 0, totIn = 0, totInstr = 0;
    forEachWorkload([&](const Workload &w) {
        RecordResult rec = recordProgram(w.program, benchMachine(),
                                         benchRecorder());
        const RunMetrics &m = rec.metrics;
        double secs = static_cast<double>(m.cycles) / benchClockHz;
        t.row().cell(w.name).cell(m.chunks)
            .cell(m.logSizes.memoryBytes).cell(m.logSizes.inputBytes)
            .cell(m.memLogBytesPerKiloInstr(), 3)
            .cell(m.inputLogBytesPerKiloInstr(), 3)
            .cell(static_cast<double>(m.logSizes.memoryBytes) / secs /
                      1024.0, 1)
            .cell(static_cast<double>(m.logSizes.inputBytes) / secs /
                      1024.0, 1);
        totMem += m.logSizes.memoryBytes;
        totIn += m.logSizes.inputBytes;
        totInstr += m.instrs;
    });
    t.row().cell("total").cell("").cell(totMem).cell(totIn)
        .cell(ratio(static_cast<double>(totMem),
                    static_cast<double>(totInstr) / 1000.0), 3)
        .cell(ratio(static_cast<double>(totIn),
                    static_cast<double>(totInstr) / 1000.0), 3)
        .cell("").cell("");
    t.print();
    std::printf("\nShape check vs paper: memory log well under a few "
                "bytes per kilo-instruction;\ninput log dominated by "
                "kernel-interaction-heavy workloads.\n");
    return 0;
}
