/**
 * @file
 * A6 -- OS tick-rate ablation. QuickRec terminates chunks at every
 * kernel entry, so the timer frequency bounds chunk sizes and adds
 * per-trap software cost: a fast tick shreds chunks and inflates both
 * the log and the overhead; a slow tick lets conflicts/syscalls bound
 * chunks naturally. One of the paper's "lessons learned" is exactly
 * this coupling between the OS and the recording hardware.
 */

#include "common.hh"

using namespace qr;

int
main()
{
    benchHeader("A6", "timeslice (OS tick) vs chunking and overhead");
    Table t({"benchmark", "timeslice", "chunks", "mean chunk",
             "trap term%", "memlog B/KI", "rec ovh%"});
    for (const char *name : {"fft", "lu", "water-nsq"}) {
        for (Tick slice : {2000u, 5000u, 20000u, 80000u}) {
            Workload base_w = makeByName(name, benchThreads, benchScale);
            Workload rec_w = makeByName(name, benchThreads, benchScale);
            MachineConfig mcfg = benchMachine();
            mcfg.core.timeslice = slice;
            RunMetrics base = runBaseline(base_w.program, mcfg);
            RecordResult rec = recordProgram(rec_w.program, mcfg,
                                             benchRecorder());
            const RunMetrics &m = rec.metrics;
            double trapPct = percent(
                static_cast<double>(
                    m.reasonCounts[static_cast<int>(
                        ChunkReason::Syscall)] +
                    m.reasonCounts[static_cast<int>(
                        ChunkReason::ContextSwitch)]),
                static_cast<double>(m.chunks));
            t.row().cell(name).cell(static_cast<std::uint64_t>(slice))
                .cell(m.chunks).cell(m.chunkSizes.mean(), 1)
                .cellPct(trapPct)
                .cell(m.memLogBytesPerKiloInstr(), 3)
                .cellPct(percent(static_cast<double>(m.cycles) -
                                     static_cast<double>(base.cycles),
                                 static_cast<double>(base.cycles)));
        }
    }
    t.print();
    std::printf("\nExpected shape: faster ticks -> more trap-bounded "
                "chunks, denser logs,\nhigher software overhead.\n");
    return 0;
}
