/**
 * @file
 * Quickstart: record a racy multithreaded guest program under
 * QuickRec, inspect what the hardware and Capo3 captured, then replay
 * the logs and verify the re-execution is bit-exact.
 *
 * Build & run:   cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "core/session.hh"
#include "workloads/micro.hh"

using namespace qr;

int
main()
{
    // A deliberately racy program: 4 threads increment a shared
    // counter 2000 times each WITHOUT a lock, so the final value
    // depends on the exact interleaving -- which is precisely what
    // QuickRec must capture and reproduce.
    Workload w = makeRacyCounter(4, 2000, /* locked = */ false);

    std::printf("== record ==\n");
    RecordResult rec = recordProgram(w.program);
    const RunMetrics &m = rec.metrics;
    std::printf("ran %llu instructions on 4 cores in %llu cycles\n",
                (unsigned long long)m.instrs,
                (unsigned long long)m.cycles);
    std::printf("chunks logged:    %llu (mean %.0f instrs, %.1f%% by "
                "conflict)\n",
                (unsigned long long)m.chunks, m.chunkSizes.mean(),
                m.conflictChunkFraction() * 100);
    std::printf("memory log:       %llu bytes (%.3f B/k-instr)\n",
                (unsigned long long)m.logSizes.memoryBytes,
                m.memLogBytesPerKiloInstr());
    std::printf("input log:        %llu bytes, %llu records\n",
                (unsigned long long)m.logSizes.inputBytes,
                (unsigned long long)m.inputRecords);
    std::printf("recording overhead charged: %llu cycles\n",
                (unsigned long long)m.recordingOverheadCycles);

    std::printf("\n== replay ==\n");
    ReplayResult rep = replaySphere(w.program, rec.logs);
    if (!rep.ok) {
        std::printf("replay diverged: %s\n", rep.divergence.c_str());
        return 1;
    }
    std::printf("replayed %llu chunks / %llu instructions, injected "
                "%llu input records\n",
                (unsigned long long)rep.replayedChunks,
                (unsigned long long)rep.replayedInstrs,
                (unsigned long long)rep.injectedRecords);

    VerifyReport v = verifyDigests(rec.metrics.digests, rep.digests);
    std::printf("\n== verify ==\n");
    if (v.ok) {
        std::printf("deterministic: memory, output and every thread's "
                    "final registers match.\n");
    } else {
        std::printf("MISMATCH:\n%s", v.str().c_str());
        return 1;
    }
    return 0;
}
