/**
 * @file
 * Debugging an atomicity violation with QuickRec -- the paper's
 * motivating use case. A buggy bank-transfer program occasionally
 * loses money because its balance update is not atomic. We record
 * executions until one exhibits the bug, then replay that single
 * recording repeatedly: the rare failure reproduces on every replay,
 * bit-exactly, from a log of a few kilobytes.
 *
 * Build & run:   cmake --build build && ./build/examples/debug_race
 */

#include <cstdio>

#include "core/machine.hh"
#include "core/session.hh"
#include "guest/runtime.hh"
#include "workloads/workload.hh"

using namespace qr;

namespace
{

/**
 * The buggy program: 4 tellers move money between two accounts with
 * an unlocked read-modify-write. Total money should be conserved;
 * interleavings that interleave the RMWs lose updates.
 */
Workload
makeBuggyBank(int transfers)
{
    GuestBuilder g;
    Addr accountA = g.alignedBlock(1, 50000);
    Addr accountB = g.alignedBlock(1, 50000);
    Addr totals = g.block(2);

    std::string body = "teller";
    g.emitWorkerScaffold(4, body, [&] {
        // main: publish both balances for the checker
        g.li(t1, accountA);
        g.lw(t2, t1, 0);
        g.li(t1, totals);
        g.sw(t2, t1, 0);
        g.li(t1, accountB);
        g.lw(t2, t1, 0);
        g.li(t1, totals + 4);
        g.sw(t2, t1, 0);
        g.sysWrite(totals, 8);
    });

    g.label(body);
    g.li(s1, static_cast<Word>(transfers));
    g.li(s2, accountA);
    g.li(s3, accountB);
    std::string loop = g.newLabel("loop");
    g.label(loop);
    // BUG: unlocked transfer of 1 unit from A to B
    g.lw(t1, s2, 0);
    g.addi(t1, t1, -1);
    g.sw(t1, s2, 0);
    g.lw(t1, s3, 0);
    g.addi(t1, t1, 1);
    g.sw(t1, s3, 0);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();

    return Workload{"buggy-bank", "4 tellers, unlocked transfers", 4,
                    g.finish()};
}

/** Extract the two published balances from a run's output stream. */
bool
moneyConserved(const OutputMap &outs, Word &total)
{
    // Main thread is tid 1; its stream holds the two balances.
    auto it = outs.find(1);
    if (it == outs.end() || it->second.size() < 8)
        return false;
    auto word = [&](std::size_t off) {
        Word w = 0;
        for (int b = 0; b < 4; ++b)
            w |= static_cast<Word>(it->second[off + b]) << (8 * b);
        return w;
    };
    total = word(0) + word(4);
    return total == 100000;
}

} // namespace

int
main()
{
    Workload w = makeBuggyBank(400);

    // Hunt: vary the schedule (timeslice) until a recording captures
    // the bug. In production this is "record always-on, keep the log
    // of the failing run".
    for (Tick slice = 4000; slice <= 40000; slice += 1777) {
        MachineConfig mcfg;
        mcfg.core.timeslice = slice;
        Machine machine(mcfg, RecorderConfig{}, w.program, true);
        RunMetrics m = machine.run();
        Word total = 0;
        if (moneyConserved(machine.outputs(), total))
            continue;

        std::printf("caught the bug with timeslice %llu: total money "
                    "%u != 100000\n",
                    (unsigned long long)slice, total);
        std::printf("log captured: %llu chunk records, %llu B memory "
                    "log, %llu B input log\n",
                    (unsigned long long)m.chunks,
                    (unsigned long long)m.logSizes.memoryBytes,
                    (unsigned long long)m.logSizes.inputBytes);

        // Replay the failure deterministically, as many times as the
        // debugger needs.
        for (int attempt = 1; attempt <= 3; ++attempt) {
            Replayer replayer(w.program, machine.sphereLogs());
            ReplayResult rep = replayer.run();
            if (!rep.ok) {
                std::printf("replay diverged: %s\n",
                            rep.divergence.c_str());
                return 1;
            }
            VerifyReport v = verifyDigests(m.digests, rep.digests);
            std::printf("replay #%d: %s (memory digest %016llx)\n",
                        attempt,
                        v.ok ? "identical buggy execution reproduced"
                             : "MISMATCH",
                        (unsigned long long)rep.digests.memory);
            if (!v.ok)
                return 1;
        }
        return 0;
    }
    std::printf("no schedule exhibited the bug (unexpected)\n");
    return 1;
}
