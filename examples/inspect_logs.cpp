/**
 * @file
 * Log inspector: records a small program, then decodes and
 * pretty-prints the recording artifact -- per-thread chunk logs
 * (timestamps, sizes, RSW, termination reasons) and input logs
 * (syscalls with copied data, nondeterministic values, signals) --
 * followed by the global replay schedule the replayer would enforce.
 *
 * Build & run:   cmake --build build && ./build/examples/inspect_logs
 */

#include <cstdio>

#include "core/session.hh"
#include "kernel/syscall.hh"
#include "replay/log_reader.hh"
#include "sim/logging.hh"
#include "sim/table.hh"
#include "workloads/micro.hh"

using namespace qr;

int
main()
{
    Workload w = makeNondetMix(2, 24);
    MachineConfig mcfg;
    mcfg.core.timeslice = 4000;
    RecordResult rec = recordProgram(w.program, mcfg);

    std::printf("recorded '%s': %llu chunks, %llu input records\n\n",
                w.name.c_str(),
                (unsigned long long)rec.metrics.chunks,
                (unsigned long long)rec.metrics.inputRecords);

    for (const auto &[tid, logs] : rec.logs.threads) {
        std::printf("--- thread %d: memory (chunk) log ---\n", tid);
        Table ct({"#", "timestamp", "instrs", "rsw", "reason"});
        std::uint64_t i = 0;
        for (const ChunkRecord &c : logs.chunks) {
            ct.row().cell(i++).cell(c.ts)
                .cell(static_cast<std::uint64_t>(c.size))
                .cell(static_cast<std::uint64_t>(c.rsw))
                .cell(chunkReasonName(c.reason));
            if (i >= 12) {
                ct.row().cell("...").cell("").cell("").cell("").cell("");
                break;
            }
        }
        ct.print();

        std::printf("--- thread %d: input log ---\n", tid);
        Table it({"#", "kind", "detail"});
        i = 0;
        for (const InputRecord &r : logs.input) {
            std::string detail;
            switch (r.kind) {
              case InputKind::ThreadStart:
                detail = csprintf("pc=%u sp=0x%x arg=%u parent=%u",
                                  r.pc, r.sp, r.arg, r.parent);
                break;
              case InputKind::SyscallRet:
                detail = csprintf(
                    "%s -> %u%s", syscallName(static_cast<Sys>(r.num)),
                    r.ret,
                    r.copyWords.empty()
                        ? ""
                        : csprintf(" (+%zu words to 0x%x)",
                                   r.copyWords.size(), r.copyAddr)
                              .c_str());
                break;
              case InputKind::Nondet:
                detail = csprintf(
                    "%s = 0x%x",
                    opcodeName(static_cast<Opcode>(r.num)), r.ret);
                break;
              case InputKind::SignalDeliver:
                detail = csprintf("signo %u after chunk %llu", r.num,
                                  (unsigned long long)r.afterChunkSeq);
                break;
              case InputKind::ThreadExit:
                detail = csprintf("code %u after %llu instrs", r.ret,
                                  (unsigned long long)r.instrs);
                break;
            }
            it.row().cell(i++).cell(inputKindName(r.kind)).cell(detail);
            if (i >= 14) {
                it.row().cell("...").cell("").cell("");
                break;
            }
        }
        it.print();
        std::printf("\n");
    }

    std::printf("--- global replay schedule (first 20 chunks by "
                "(timestamp, tid)) ---\n");
    Table st({"order", "timestamp", "tid", "instrs", "reason"});
    auto schedule = buildSchedule(rec.logs);
    for (std::size_t i = 0; i < schedule.size() && i < 20; ++i) {
        const ChunkRecord &c = schedule[i];
        st.row().cell(i).cell(c.ts)
            .cell(static_cast<std::int64_t>(c.tid))
            .cell(static_cast<std::uint64_t>(c.size))
            .cell(chunkReasonName(c.reason));
    }
    st.print();

    ReplayResult rep = replaySphere(w.program, rec.logs);
    std::printf("\nreplay: %s\n",
                rep.ok ? "deterministic" : rep.divergence.c_str());
    return rep.ok ? 0 : 1;
}
