/**
 * @file
 * Always-on recording service: runs the whole benchmark suite under
 * recording back to back, persists every sphere to disk, accounts the
 * log budget (the paper's practicality question: can RnR be left on?),
 * and spot-checks replayability of the saved files.
 *
 * Build & run:   cmake --build build && ./build/examples/always_on
 */

#include <cstdio>
#include <string>

#include "capo/log_store.hh"
#include "core/session.hh"
#include "sim/table.hh"
#include "workloads/workload.hh"

using namespace qr;

int
main()
{
    constexpr double clockHz = 60e6; // QuickIA core clock
    std::uint64_t totalBytes = 0;
    double totalSeconds = 0;

    Table t({"sphere", "file", "bytes", "KB/s", "reload+replay"});
    int sphere = 0;
    for (const auto &spec : splash2Suite()) {
        Workload w = spec.make(4, 2);
        RecordResult rec = recordProgram(w.program);

        std::string path = "/tmp/qr_sphere_" + w.name + ".qrs";
        SphereSaveResult saved = saveSphere(rec.logs, path);
        if (!saved) {
            std::fprintf(stderr, "save failed: %s\n",
                         saved.error.c_str());
            continue;
        }
        std::uint64_t bytes = saved.bytes;
        double secs = static_cast<double>(rec.metrics.cycles) / clockHz;
        totalBytes += bytes;
        totalSeconds += secs;

        // Reload from disk and verify it still replays bit-exactly --
        // the artifact on disk is the product, not the in-memory state.
        SphereLoadResult reloaded = loadSphere(path);
        bool ok = false;
        if (reloaded) {
            ReplayResult rep = replaySphere(w.program, reloaded.logs);
            ok = rep.ok &&
                 verifyDigests(rec.metrics.digests, rep.digests).ok;
        } else {
            std::fprintf(stderr, "reload failed: %s\n",
                         reloaded.error.c_str());
        }

        t.row().cell(w.name).cell(path).cell(bytes)
            .cell(static_cast<double>(bytes) / secs / 1024.0, 1)
            .cell(ok ? "ok" : "FAILED");
        sphere++;
    }
    t.print();

    std::printf("\n%d spheres recorded back to back.\n", sphere);
    std::printf("aggregate log rate: %.1f KB/s of guest execution "
                "(%.2f GB/day if left always-on)\n",
                static_cast<double>(totalBytes) / totalSeconds / 1024.0,
                static_cast<double>(totalBytes) / totalSeconds *
                    86400.0 / 1e9);
    return 0;
}
