/**
 * @file
 * Always-on recording service: runs the whole benchmark suite under
 * recording through the qrecd RecordService (the embedding API behind
 * `qrec serve`), persists every sphere to its artifact store, accounts
 * the log budget (the paper's practicality question: can RnR be left
 * on?), and spot-checks replayability of the saved artifacts.
 *
 * Unlike a demo that shrugs off I/O errors, this accounts every
 * sphere: a failed save is retried once, and any sphere that still
 * has nothing on disk makes the process exit nonzero -- an always-on
 * recorder that silently loses spheres is worse than none, because it
 * converts "no evidence" into "false evidence of a clean run".
 *
 * Build & run:   cmake --build build && ./build/examples/always_on
 */

#include <cstdio>
#include <string>

#include "core/artifact.hh"
#include "core/session.hh"
#include "service/service.hh"
#include "sim/table.hh"
#include "workloads/workload.hh"

using namespace qr;

int
main()
{
    constexpr double clockHz = 60e6; // QuickIA core clock

    ServiceConfig cfg;
    cfg.dir = "/tmp/qr_always_on";
    cfg.workers = 2;
    cfg.saveRetries = 1; // one retry, then the loss is counted
    // One suite's worth of artifacts: a re-run rotates the previous
    // run's spheres out instead of piling them up.
    cfg.retention.maxArtifacts = splash2Suite().size();
    RecordService svc(cfg);
    svc.start();

    std::uint64_t expectedCycles = 0;
    int submitted = 0;
    for (const auto &spec : splash2Suite()) {
        Workload w = spec.make(4, 2);
        SphereRequest req;
        req.workload = w.name;
        req.threads = 4;
        req.scale = 2;
        req.program = w.program;
        SubmitResult r = svc.submit(std::move(req));
        if (!r.admitted()) {
            std::fprintf(stderr, "shed %s: %s\n", w.name.c_str(),
                         admissionOutcomeName(r.outcome));
            continue;
        }
        submitted++;
    }
    svc.waitIdle();
    svc.shutdown();

    // Every artifact the store retained must reload and replay
    // bit-exactly -- the file on disk is the product, not the
    // in-memory state.
    std::uint64_t totalBytes = 0;
    double totalSeconds = 0;
    int replayFailures = 0;
    Table t({"sphere", "file", "bytes", "KB/s", "reload+replay"});
    for (const ArtifactFile &f : svc.store().scan().sealed) {
        ArtifactLoadResult art = loadArtifact(f.path);
        bool ok = false;
        double secs = 0;
        if (art) {
            Workload w = makeByName(art.artifact.workload,
                                    art.artifact.threads,
                                    art.artifact.scale);
            ReplayResult rep = replaySphere(w.program, art.artifact.logs);
            ok = rep.ok &&
                 verifyDigests(art.artifact.digests, rep.digests).ok;
            secs = static_cast<double>(rep.modeledCycles) / clockHz;
            expectedCycles += rep.modeledCycles;
        } else {
            std::fprintf(stderr, "reload failed: %s\n",
                         art.detail.c_str());
        }
        if (!ok)
            replayFailures++;
        totalBytes += f.bytes;
        totalSeconds += secs;
        t.row().cell(art.artifact.workload).cell(f.path).cell(f.bytes)
            .cell(secs > 0
                      ? static_cast<double>(f.bytes) / secs / 1024.0
                      : 0.0,
                  1)
            .cell(ok ? "ok" : "FAILED");
    }
    t.print();

    ServiceCounters c = svc.counters();
    std::printf("\n%d spheres recorded back to back "
                "(%llu save attempt(s), %llu retried).\n",
                submitted,
                (unsigned long long)c.saveAttempts,
                (unsigned long long)c.saveRetries);
    if (totalSeconds > 0)
        std::printf("aggregate log rate: %.1f KB/s of guest execution "
                    "(%.2f GB/day if left always-on)\n",
                    static_cast<double>(totalBytes) / totalSeconds /
                        1024.0,
                    static_cast<double>(totalBytes) / totalSeconds *
                        86400.0 / 1e9);

    // The exit code is the contract: any sphere that was admitted but
    // is not a clean replayable artifact on disk fails the run.
    std::uint64_t lost = c.saveLost + c.saveTornLeft;
    if (lost || replayFailures ||
        c.saved != static_cast<std::uint64_t>(submitted)) {
        std::fprintf(stderr,
                     "FAILED: %llu sphere(s) lost, %llu torn, "
                     "%d replay failure(s) out of %d submitted\n",
                     (unsigned long long)c.saveLost,
                     (unsigned long long)c.saveTornLeft,
                     replayFailures, submitted);
        return 1;
    }
    std::printf("all %d spheres saved and replayable; zero losses.\n",
                submitted);
    return 0;
}
